//! The real byte-level transport.
//!
//! The rest of the workspace *models* data shipment: the synchronous
//! [`crate::Network`] meters each payload's declared
//! [`crate::Wire::wire_size`] and calls it `|M|` (§2.3). This module
//! ships **actual bytes**: typed messages serialize to length-prefixed
//! frames ([`frame`]), frames cross either a deterministic in-process
//! channel or real `TcpListener`/`TcpStream` sockets ([`tcp`]), and the
//! receiving site reconstructs the message from nothing but the received
//! bytes. [`ByteNetwork`] meters both quantities side by side — the
//! modeled `|M|` (identical accounting to [`crate::Network`]) and the
//! measured on-wire bytes — so the benchmark report can hold the model to
//! the wire.
//!
//! # Accounting identity
//!
//! For every frame the network maintains, constructively (each counter
//! incremented at its own source, never derived by subtraction):
//!
//! ```text
//! wire_bytes == modeled |M| + structural_bytes − saved_bytes
//! ```
//!
//! where `structural_bytes` is the framing the model ignores (the
//! 4-byte length prefix + 1-byte method marker per frame, plus the
//! per-message tags and item counts itemized in [`bytes`]), and
//! `saved_bytes` is what per-frame LZ compression ([`crate::lz`],
//! enabled by [`Compression::Lz`]) recovered. The differential test
//! suite asserts this identity over whole protocol runs.

pub mod bytes;
pub mod frame;
pub mod tcp;

use crate::{lz, ClusterError, MsgTransport, NetStats, SiteId, Wire};
use frame::{FRAME_HEADER_BYTES, FRAME_METHOD_BYTES, MAX_FRAME_BYTES, METHOD_LZ, METHOD_STORED};
use std::collections::VecDeque;
use std::time::Duration;

pub use frame::{in_mem_pair, InMemLink};
pub use tcp::{join_mesh, Inbound, NodeEndpoint, ReaderGuard, TcpLink};

/// One end of one framed byte link. `send_frame` writes a complete
/// `[len][method][body]` frame; `recv_frame` blocks for (or, on the
/// in-process channel, requires) the next one. All failures are
/// [`ClusterError::Transport`] — implementations never panic on
/// malformed or truncated input.
pub trait ByteTransport: Send + std::fmt::Debug {
    /// Write one frame (`method` says how `body` is packed — see
    /// [`frame::METHOD_STORED`] / [`frame::METHOD_LZ`]).
    fn send_frame(&mut self, method: u8, body: &[u8]) -> Result<(), ClusterError>;

    /// Read the next frame.
    fn recv_frame(&mut self) -> Result<(u8, Vec<u8>), ClusterError>;
}

impl ByteTransport for InMemLink {
    fn send_frame(&mut self, method: u8, body: &[u8]) -> Result<(), ClusterError> {
        frame::write_frame(self, method, body)
    }

    fn recv_frame(&mut self) -> Result<(u8, Vec<u8>), ClusterError> {
        frame::read_frame(self)
    }
}

/// Messages that can cross a byte link: they know their modeled size
/// ([`Wire`]) *and* how to serialize/deserialize themselves.
pub trait FrameCodec: Wire + Sized + Send + std::fmt::Debug {
    /// Append the serialized message to `out`, returning the
    /// **structural overhead**: bytes written beyond
    /// [`Wire::wire_size`] (tags, counts — see [`bytes`]). Encoders
    /// must uphold `out-growth == wire_size() + overhead`;
    /// [`ByteNetwork::send`] debug-asserts it.
    fn encode_frame(&self, out: &mut Vec<u8>) -> usize;

    /// Rebuild a message from one decoded frame body.
    fn decode_frame(body: &[u8]) -> Result<Self, ClusterError>;
}

/// Per-frame body packing applied by a [`ByteNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Bodies ship verbatim.
    #[default]
    None,
    /// Each body is [`lz`]-compressed when that is smaller ("per-message
    /// LZ"); the method byte records the choice per frame.
    Lz,
}

/// Which substrate a detection session's protocol traffic rides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The synchronous, metered in-process [`crate::Network`] — modeled
    /// `|M|` only (the pre-transport default).
    #[default]
    Simulated,
    /// [`ByteNetwork`] over deterministic in-process framed channels:
    /// real serialized bytes, reproducible counts — the CI substrate.
    Framed,
    /// [`ByteNetwork`] over localhost TCP sockets, each site's receive
    /// side on its own threads.
    Tcp,
}

impl TransportKind {
    /// Stable label for reports (`"simulated"` / `"framed"` / `"tcp"`).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Simulated => "simulated",
            TransportKind::Framed => "framed",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Whole-run transport counters, each maintained constructively at its
/// own increment site (see the module docs for the identity they obey).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportMeter {
    /// Frames shipped.
    pub frames: u64,
    /// Actual bytes on the wire, including the per-frame header.
    pub wire_bytes: u64,
    /// Modeled `|M|` bytes ([`Wire::wire_size`] sums).
    pub modeled_bytes: u64,
    /// Structural bytes the model ignores: frame headers + method bytes
    /// + message tags + item counts.
    pub structural_bytes: u64,
    /// Bytes recovered by per-frame compression.
    pub saved_bytes: u64,
}

/// Unpack one received frame body per its method byte and decode the
/// message — the receive half of the [`ByteNetwork::send`] recipe,
/// shared with the per-site runtime (`cluster::run`).
pub fn decode_body<M: FrameCodec>(method: u8, body: Vec<u8>) -> Result<M, ClusterError> {
    let body = match method {
        METHOD_STORED => body,
        METHOD_LZ => lz::decompress(&body, MAX_FRAME_BYTES)
            .map_err(|e| ClusterError::Transport(e.to_string()))?,
        other => {
            return Err(ClusterError::Transport(format!(
                "unknown frame method {other}"
            )))
        }
    };
    M::decode_frame(&body)
}

/// How the receive side of a [`ByteNetwork`] is wired.
#[derive(Debug)]
enum RxSide {
    /// Receive halves held directly, read deterministically in site
    /// order (the in-process mesh).
    Direct(Vec<Vec<Option<Box<dyn ByteTransport>>>>),
    /// Per-site inbox channels fed by reader threads (the TCP mesh),
    /// plus the guards that shut the readers down and join them when
    /// the network is dropped.
    Inboxes {
        inboxes: Vec<std::sync::mpsc::Receiver<tcp::Inbound>>,
        _guards: Vec<tcp::ReaderGuard>,
    },
}

/// A byte-shipping drop-in for [`crate::Network`]: same send/drain
/// discipline and identical modeled `|M|` accounting, but every message
/// is serialized, framed, optionally compressed, pushed through a real
/// byte link, and decoded on the receiving side from the received bytes
/// alone.
///
/// Determinism: the network tracks how many frames are in flight per
/// ordered link, so `try_drain` reads exactly the frames it knows exist
/// (in sender-site order) — no polling, no timeouts on the in-process
/// mesh, and reproducible byte counts for the benchmark gate.
#[derive(Debug)]
pub struct ByteNetwork<M> {
    n: usize,
    tx: Vec<Vec<Option<Box<dyn ByteTransport>>>>,
    rx: RxSide,
    /// Frames in flight per `(src, dst)`.
    pending: Vec<Vec<usize>>,
    /// Modeled `|M|` — identical accounting to [`crate::Network`].
    stats: NetStats,
    /// Measured on-wire traffic (bytes include the frame header).
    wire: NetStats,
    meter: TransportMeter,
    compression: Compression,
    scratch: Vec<u8>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M: FrameCodec> ByteNetwork<M> {
    /// An `n`-site network over deterministic in-process framed channels.
    pub fn in_memory(n: usize) -> Self {
        let mut tx: Vec<Vec<Option<Box<dyn ByteTransport>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rx: Vec<Vec<Option<Box<dyn ByteTransport>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (a, b) = in_mem_pair();
                tx[src][dst] = Some(Box::new(a));
                rx[src][dst] = Some(Box::new(b));
            }
        }
        ByteNetwork::with_parts(n, tx, RxSide::Direct(rx))
    }

    /// An `n`-site network over localhost TCP sockets (one connection per
    /// ordered pair; each site's inbound links serviced by dedicated
    /// reader threads).
    pub fn tcp_localhost(n: usize) -> Result<Self, ClusterError> {
        let mesh = tcp::TcpMesh::localhost(n)?;
        let tx = mesh
            .tx
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|l| l.map(|l| Box::new(l) as Box<dyn ByteTransport>))
                    .collect()
            })
            .collect();
        Ok(ByteNetwork::with_parts(
            n,
            tx,
            RxSide::Inboxes {
                inboxes: mesh.rx,
                _guards: mesh.guards,
            },
        ))
    }

    fn with_parts(n: usize, tx: Vec<Vec<Option<Box<dyn ByteTransport>>>>, rx: RxSide) -> Self {
        ByteNetwork {
            n,
            tx,
            rx,
            pending: vec![vec![0; n]; n],
            stats: NetStats::new(n),
            wire: NetStats::new(n),
            meter: TransportMeter::default(),
            compression: Compression::default(),
            scratch: Vec::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// Select the per-frame body packing.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.n
    }

    /// Modeled `|M|` statistics (same accounting as [`crate::Network`]).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Measured on-wire statistics: per-link frame counts and actual
    /// bytes including framing.
    pub fn wire_stats(&self) -> &NetStats {
        &self.wire
    }

    /// Whole-run transport counters.
    pub fn meter(&self) -> TransportMeter {
        self.meter
    }

    /// Ship `msg` from `src` to `dst` as a real frame.
    pub fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError> {
        if src == dst {
            return Err(ClusterError::Loopback(src));
        }
        if src >= self.n || dst >= self.n {
            return Err(ClusterError::UnknownSite(dst.max(src)));
        }
        self.scratch.clear();
        let structural = msg.encode_frame(&mut self.scratch);
        debug_assert_eq!(
            self.scratch.len(),
            msg.wire_size() + structural,
            "encoder broke the overhead identity"
        );
        // The frame bound applies to the *serialized* message, not to
        // whatever compression makes of it: receivers cap decompressed
        // output at MAX_FRAME_BYTES, so a message accepted here must be
        // decodable there regardless of how well it packed.
        if self.scratch.len() + FRAME_METHOD_BYTES > MAX_FRAME_BYTES {
            return Err(ClusterError::Transport(format!(
                "refusing to send an oversized message ({} > {MAX_FRAME_BYTES} bytes serialized)",
                self.scratch.len() + FRAME_METHOD_BYTES
            )));
        }
        let packed;
        let (method, body): (u8, &[u8]) = match self.compression {
            Compression::None => (METHOD_STORED, &self.scratch),
            Compression::Lz => {
                packed = lz::compress(&self.scratch);
                if packed.len() < self.scratch.len() {
                    (METHOD_LZ, &packed)
                } else {
                    (METHOD_STORED, &self.scratch)
                }
            }
        };
        let link = self.tx[src][dst]
            .as_mut()
            .expect("off-diagonal links always exist");
        link.send_frame(method, body)?;
        let wire_len = FRAME_HEADER_BYTES + FRAME_METHOD_BYTES + body.len();
        self.stats
            .record(src, dst, msg.wire_size(), msg.eqid_count());
        self.wire.record(src, dst, wire_len, 0);
        self.meter.frames += 1;
        self.meter.wire_bytes += wire_len as u64;
        self.meter.modeled_bytes += msg.wire_size() as u64;
        self.meter.structural_bytes +=
            (structural + FRAME_HEADER_BYTES + FRAME_METHOD_BYTES) as u64;
        self.meter.saved_bytes += (self.scratch.len() - body.len()) as u64;
        self.pending[src][dst] += 1;
        Ok(())
    }

    fn decode(method: u8, body: Vec<u8>) -> Result<M, ClusterError> {
        decode_body(method, body)
    }

    /// Receive and decode every in-flight frame addressed to `site`,
    /// grouped in sender-site order (FIFO within each sender).
    pub fn try_drain(&mut self, site: SiteId) -> Result<Vec<(SiteId, M)>, ClusterError> {
        if site >= self.n {
            return Err(ClusterError::UnknownSite(site));
        }
        // Pending counters are decremented exactly when a frame has been
        // consumed off its link (even if it then fails to decode), so an
        // error mid-drain leaves the bookkeeping matching what is still
        // buffered: unread frames stay pending, consumed frames don't.
        let mut out = Vec::new();
        match &mut self.rx {
            RxSide::Direct(links) => {
                for (src, row) in links.iter_mut().enumerate() {
                    let k = self.pending[src][site];
                    for _ in 0..k {
                        let link = row[site].as_mut().expect("pending frames imply a link");
                        let (method, body) = link.recv_frame()?;
                        self.pending[src][site] -= 1;
                        out.push((src, Self::decode(method, body)?));
                    }
                }
            }
            RxSide::Inboxes { inboxes, .. } => {
                let total: usize = (0..self.n).map(|src| self.pending[src][site]).sum();
                let mut per_src: Vec<VecDeque<M>> = (0..self.n).map(|_| VecDeque::new()).collect();
                for _ in 0..total {
                    let (src, res) = inboxes[site]
                        .recv_timeout(Duration::from_secs(10))
                        .map_err(|_| {
                            ClusterError::Transport(
                                "timed out waiting for an in-flight frame (reader thread gone?)"
                                    .into(),
                            )
                        })?;
                    let (method, body) = res?;
                    self.pending[src][site] =
                        self.pending[src][site].checked_sub(1).ok_or_else(|| {
                            ClusterError::Transport(format!(
                                "unexpected frame from site {src} (nothing in flight)"
                            ))
                        })?;
                    per_src[src].push_back(Self::decode(method, body)?);
                }
                for (src, msgs) in per_src.iter_mut().enumerate() {
                    out.extend(msgs.drain(..).map(|m| (src, m)));
                }
            }
        }
        Ok(out)
    }

    /// Are all links idle? (protocol-completion assertion)
    pub fn quiescent(&self) -> bool {
        self.pending.iter().all(|row| row.iter().all(|&p| p == 0))
    }

    /// Reset every meter (links must be idle).
    pub fn reset_stats(&mut self) {
        debug_assert!(self.quiescent());
        self.stats.reset();
        self.wire.reset();
        self.meter = TransportMeter::default();
    }
}

impl<M: FrameCodec> MsgTransport<M> for ByteNetwork<M> {
    fn n_sites(&self) -> usize {
        ByteNetwork::n_sites(self)
    }

    fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError> {
        ByteNetwork::send(self, src, dst, msg)
    }

    fn try_drain(&mut self, site: SiteId) -> Result<Vec<(SiteId, M)>, ClusterError> {
        ByteNetwork::try_drain(self, site)
    }

    fn quiescent(&self) -> bool {
        ByteNetwork::quiescent(self)
    }

    fn stats(&self) -> &NetStats {
        ByteNetwork::stats(self)
    }

    fn wire_stats(&self) -> Option<&NetStats> {
        Some(ByteNetwork::wire_stats(self))
    }

    fn transport_meter(&self) -> Option<TransportMeter> {
        Some(self.meter())
    }

    fn reset_stats(&mut self) {
        ByteNetwork::reset_stats(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy message: a run of `u64`s (modeled at 8 B each, like eqids).
    #[derive(Debug, Clone, PartialEq)]
    struct Nums(Vec<u64>);

    impl Wire for Nums {
        fn wire_size(&self) -> usize {
            8 * self.0.len()
        }
        fn eqid_count(&self) -> usize {
            self.0.len()
        }
    }

    impl FrameCodec for Nums {
        fn encode_frame(&self, out: &mut Vec<u8>) -> usize {
            out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
            for v in &self.0 {
                out.extend_from_slice(&v.to_le_bytes());
            }
            4
        }

        fn decode_frame(body: &[u8]) -> Result<Self, ClusterError> {
            let mut r = bytes::Reader::new(body);
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                v.push(r.u64()?);
            }
            r.finish()?;
            Ok(Nums(v))
        }
    }

    #[test]
    fn in_memory_network_ships_decodes_and_meters() {
        let mut net: ByteNetwork<Nums> = ByteNetwork::in_memory(3);
        net.send(0, 2, Nums(vec![1, 2, 3])).unwrap();
        net.send(1, 2, Nums(vec![4])).unwrap();
        assert!(!net.quiescent());
        let got = net.try_drain(2).unwrap();
        assert_eq!(
            got,
            vec![(0, Nums(vec![1, 2, 3])), (1, Nums(vec![4]))],
            "sender order, FIFO per sender"
        );
        assert!(net.quiescent());
        // Modeled |M| matches the simulated network's accounting…
        assert_eq!(net.stats().total_bytes(), 8 * 4);
        assert_eq!(net.stats().total_eqids(), 4);
        // …and the constructive identity holds.
        let m = net.meter();
        assert_eq!(m.frames, 2);
        assert_eq!(m.saved_bytes, 0);
        assert_eq!(m.wire_bytes, m.modeled_bytes + m.structural_bytes);
        assert_eq!(net.wire_stats().total_bytes(), m.wire_bytes);
        // Structural = per-frame header+method (5) + the u32 count (4).
        assert_eq!(m.structural_bytes, 2 * (5 + 4));
    }

    #[test]
    fn loopback_and_unknown_sites_are_rejected() {
        let mut net: ByteNetwork<Nums> = ByteNetwork::in_memory(2);
        assert_eq!(
            net.send(1, 1, Nums(vec![1])),
            Err(ClusterError::Loopback(1))
        );
        assert!(matches!(
            net.send(0, 9, Nums(vec![1])),
            Err(ClusterError::UnknownSite(9))
        ));
        assert!(matches!(
            net.try_drain(5),
            Err(ClusterError::UnknownSite(5))
        ));
    }

    #[test]
    fn lz_compression_shrinks_repetitive_frames_and_balances() {
        let repetitive = Nums(vec![0xABCD_EF00; 400]);
        let mut plain: ByteNetwork<Nums> = ByteNetwork::in_memory(2);
        let mut lz: ByteNetwork<Nums> = ByteNetwork::in_memory(2).with_compression(Compression::Lz);
        plain.send(0, 1, repetitive.clone()).unwrap();
        lz.send(0, 1, repetitive.clone()).unwrap();
        assert_eq!(lz.try_drain(1).unwrap(), vec![(0, repetitive.clone())]);
        assert_eq!(plain.try_drain(1).unwrap(), vec![(0, repetitive)]);
        // Same model, smaller wire.
        assert_eq!(lz.stats().total_bytes(), plain.stats().total_bytes());
        let (pm, lm) = (plain.meter(), lz.meter());
        assert!(lm.saved_bytes > 0);
        assert!(lm.wire_bytes < pm.wire_bytes / 4, "{lm:?} vs {pm:?}");
        assert_eq!(
            lm.wire_bytes,
            lm.modeled_bytes + lm.structural_bytes - lm.saved_bytes
        );
    }

    #[test]
    fn incompressible_frames_fall_back_to_stored() {
        let noise = Nums(
            (0..64)
                .map(|i: u64| i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        );
        let mut lz: ByteNetwork<Nums> = ByteNetwork::in_memory(2).with_compression(Compression::Lz);
        lz.send(0, 1, noise.clone()).unwrap();
        assert_eq!(lz.try_drain(1).unwrap(), vec![(0, noise)]);
        // Stored fallback: wire never exceeds modeled + structural.
        let m = lz.meter();
        assert_eq!(
            m.wire_bytes,
            m.modeled_bytes + m.structural_bytes - m.saved_bytes
        );
        assert!(m.wire_bytes <= m.modeled_bytes + m.structural_bytes);
    }

    #[test]
    fn tcp_network_round_trips_small_protocol() {
        let mut net: ByteNetwork<Nums> = ByteNetwork::tcp_localhost(3).unwrap();
        for round in 0..5u64 {
            net.send(0, 1, Nums(vec![round, round + 1])).unwrap();
            net.send(2, 1, Nums(vec![round * 10])).unwrap();
            let got = net.try_drain(1).unwrap();
            assert_eq!(
                got,
                vec![
                    (0, Nums(vec![round, round + 1])),
                    (2, Nums(vec![round * 10])),
                ]
            );
            // Replies flow back over the same mesh.
            net.send(1, 0, Nums(vec![round])).unwrap();
            assert_eq!(net.try_drain(0).unwrap(), vec![(1, Nums(vec![round]))]);
        }
        assert!(net.quiescent());
        let m = net.meter();
        assert_eq!(m.frames, 15);
        assert_eq!(m.wire_bytes, m.modeled_bytes + m.structural_bytes);
    }

    #[test]
    fn tcp_network_drop_mid_round_is_clean() {
        let mut net: ByteNetwork<Nums> = ByteNetwork::tcp_localhost(3).unwrap();
        net.send(0, 1, Nums(vec![1, 2])).unwrap();
        net.send(2, 1, Nums(vec![3])).unwrap();
        // Frames still in flight — dropping must shut down and join the
        // reader threads without panicking or hanging.
        drop(net);
        // And a fresh mesh stands up fine afterwards.
        let mut net: ByteNetwork<Nums> = ByteNetwork::tcp_localhost(2).unwrap();
        net.send(1, 0, Nums(vec![9])).unwrap();
        assert_eq!(net.try_drain(0).unwrap(), vec![(1, Nums(vec![9]))]);
    }

    /// A message whose decode rejects a sentinel payload — for testing
    /// that decode failures leave the link accounting consistent.
    #[derive(Debug, Clone, PartialEq)]
    struct Fussy(u64);

    const POISON: u64 = 0xDEAD;

    impl Wire for Fussy {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl FrameCodec for Fussy {
        fn encode_frame(&self, out: &mut Vec<u8>) -> usize {
            out.extend_from_slice(&self.0.to_le_bytes());
            0
        }

        fn decode_frame(body: &[u8]) -> Result<Self, ClusterError> {
            let mut r = bytes::Reader::new(body);
            let v = r.u64()?;
            r.finish()?;
            if v == POISON {
                return Err(ClusterError::Transport("poisoned payload".into()));
            }
            Ok(Fussy(v))
        }
    }

    #[test]
    fn drain_error_keeps_pending_frames_in_sync() {
        let mut net: ByteNetwork<Fussy> = ByteNetwork::in_memory(2);
        net.send(0, 1, Fussy(POISON)).unwrap();
        net.send(0, 1, Fussy(7)).unwrap();
        // First drain consumes the poisoned frame and errors on decode.
        assert!(net.try_drain(1).is_err());
        // The second frame is still buffered — and still accounted for:
        // the network must not claim quiescence nor lose the frame.
        assert!(!net.quiescent(), "unread frame must stay pending");
        assert_eq!(net.try_drain(1).unwrap(), vec![(0, Fussy(7))]);
        assert!(net.quiescent());
        // Subsequent traffic on the link is unaffected.
        net.send(0, 1, Fussy(8)).unwrap();
        assert_eq!(net.try_drain(1).unwrap(), vec![(0, Fussy(8))]);
    }

    #[test]
    fn oversized_serialized_messages_are_rejected_even_under_lz() {
        // The frame bound applies to the serialized size: receivers cap
        // decompressed output at MAX_FRAME_BYTES, so a message that only
        // fits *compressed* must be refused at the sender (symmetrically
        // with Compression::None) instead of dying at every receiver.
        let huge = Nums(vec![0u64; MAX_FRAME_BYTES / 8 + 1]);
        let mut lznet: ByteNetwork<Nums> =
            ByteNetwork::in_memory(2).with_compression(Compression::Lz);
        let e = lznet.send(0, 1, huge).unwrap_err();
        assert!(matches!(e, ClusterError::Transport(_)));
        assert!(e.to_string().contains("oversized"), "{e}");
        assert!(lznet.quiescent(), "nothing was shipped");
        assert_eq!(lznet.meter().frames, 0, "nothing was metered");
    }

    #[test]
    fn reset_clears_all_meters() {
        let mut net: ByteNetwork<Nums> = ByteNetwork::in_memory(2);
        net.send(0, 1, Nums(vec![7])).unwrap();
        net.try_drain(1).unwrap();
        net.reset_stats();
        assert_eq!(net.meter(), TransportMeter::default());
        assert_eq!(net.stats().total_bytes(), 0);
        assert_eq!(net.wire_stats().total_messages(), 0);
    }
}
