//! The metered, synchronous message network.
//!
//! Detection algorithms exchange typed messages (eqids, digests, partial
//! tuples, probe requests/replies). [`Network`] is generic over the message
//! type; the only requirement is [`Wire`], which reports the payload size so
//! shipment can be accounted the way the paper counts `|M|`.
//!
//! The network is synchronous and deterministic: `send` enqueues into the
//! destination inbox, `drain` empties an inbox in FIFO order. This models
//! the round-structured protocols of §4/§6 faithfully while keeping tests
//! reproducible. Metering is the load-bearing part — the experiments'
//! communication columns come straight from here.

use crate::netstats::NetStats;
use crate::{ClusterError, SiteId};
use std::collections::VecDeque;

/// Payloads that know their wire size (and optionally how many eqids they
/// carry, for the Fig. 10 metric).
pub trait Wire {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;

    /// Number of eqids in the payload (0 for non-eqid messages).
    fn eqid_count(&self) -> usize {
        0
    }
}

/// A synchronous, metered `n`-site message network.
#[derive(Debug)]
pub struct Network<M> {
    inboxes: Vec<VecDeque<(SiteId, M)>>,
    stats: NetStats,
}

impl<M: Wire> Network<M> {
    /// A network connecting `n` sites.
    pub fn new(n: usize) -> Self {
        Network {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            stats: NetStats::new(n),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.inboxes.len()
    }

    /// Ship `msg` from `src` to `dst`. Local sends are rejected — algorithms
    /// must branch to local processing instead, so that metering stays
    /// honest.
    pub fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError> {
        if src == dst {
            return Err(ClusterError::Routing(format!(
                "site {src} attempted a metered send to itself"
            )));
        }
        if dst >= self.inboxes.len() {
            return Err(ClusterError::UnknownSite(dst));
        }
        self.stats
            .record(src, dst, msg.wire_size(), msg.eqid_count());
        self.inboxes[dst].push_back((src, msg));
        Ok(())
    }

    /// Ship `msg` from `src` to `dst` and consume it immediately at the
    /// destination — fire-and-forget metering for payloads the receiving
    /// site absorbs into local state without replying (e.g. eqids fed into
    /// an HEV). Identical accounting to [`Network::send`], no inbox entry.
    pub fn ship(&mut self, src: SiteId, dst: SiteId, msg: &M) -> Result<(), ClusterError> {
        if src == dst {
            return Err(ClusterError::Routing(format!(
                "site {src} attempted a metered ship to itself"
            )));
        }
        if dst >= self.inboxes.len() {
            return Err(ClusterError::UnknownSite(dst));
        }
        self.stats
            .record(src, dst, msg.wire_size(), msg.eqid_count());
        Ok(())
    }

    /// Ship `msg` from `src` to every other site (`n−1` messages).
    pub fn broadcast(&mut self, src: SiteId, msg: M) -> Result<(), ClusterError>
    where
        M: Clone,
    {
        for dst in 0..self.inboxes.len() {
            if dst != src {
                self.send(src, dst, msg.clone())?;
            }
        }
        Ok(())
    }

    /// Drain the inbox of `site` in FIFO order.
    pub fn drain(&mut self, site: SiteId) -> Vec<(SiteId, M)> {
        self.inboxes[site].drain(..).collect()
    }

    /// Receive a single message, if any.
    pub fn recv(&mut self, site: SiteId) -> Option<(SiteId, M)> {
        self.inboxes[site].pop_front()
    }

    /// Are all inboxes empty? (protocol-completion assertion)
    pub fn quiescent(&self) -> bool {
        self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Reset statistics (inboxes must be empty).
    pub fn reset_stats(&mut self) {
        debug_assert!(self.quiescent());
        self.stats.reset();
    }
}

/// Blanket wire impls for common payload shapes.
impl Wire for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Wire for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct EqidMsg(Vec<u64>);

    impl Wire for EqidMsg {
        fn wire_size(&self) -> usize {
            8 * self.0.len()
        }
        fn eqid_count(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn send_meters_and_delivers_fifo() {
        let mut net: Network<EqidMsg> = Network::new(3);
        net.send(0, 2, EqidMsg(vec![1])).unwrap();
        net.send(1, 2, EqidMsg(vec![2, 3])).unwrap();
        net.send(0, 2, EqidMsg(vec![4])).unwrap();
        let got = net.drain(2);
        assert_eq!(
            got,
            vec![
                (0, EqidMsg(vec![1])),
                (1, EqidMsg(vec![2, 3])),
                (0, EqidMsg(vec![4])),
            ]
        );
        assert_eq!(net.stats().total_messages(), 3);
        assert_eq!(net.stats().total_bytes(), 8 * 4);
        assert_eq!(net.stats().total_eqids(), 4);
        assert!(net.quiescent());
    }

    #[test]
    fn local_send_is_rejected() {
        let mut net: Network<EqidMsg> = Network::new(2);
        assert!(matches!(
            net.send(1, 1, EqidMsg(vec![1])),
            Err(ClusterError::Routing(_))
        ));
        assert!(matches!(
            net.send(0, 9, EqidMsg(vec![1])),
            Err(ClusterError::UnknownSite(9))
        ));
    }

    #[test]
    fn broadcast_counts_n_minus_1_messages() {
        let mut net: Network<EqidMsg> = Network::new(4);
        net.broadcast(1, EqidMsg(vec![7])).unwrap();
        assert_eq!(net.stats().total_messages(), 3);
        for s in [0usize, 2, 3] {
            assert_eq!(net.drain(s).len(), 1);
        }
        assert!(net.drain(1).is_empty());
    }

    #[test]
    fn recv_single() {
        let mut net: Network<u64> = Network::new(2);
        net.send(0, 1, 42).unwrap();
        assert_eq!(net.recv(1), Some((0, 42)));
        assert_eq!(net.recv(1), None);
    }
}
