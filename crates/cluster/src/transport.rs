//! The metered, synchronous message network.
//!
//! Detection algorithms exchange typed messages (eqids, digests, partial
//! tuples, probe requests/replies). [`Network`] is generic over the message
//! type; the only requirement is [`Wire`], which reports the payload size so
//! shipment can be accounted the way the paper counts `|M|`.
//!
//! The network is synchronous and deterministic: `send` enqueues into the
//! destination inbox, `drain` empties an inbox in FIFO order. This models
//! the round-structured protocols of §4/§6 faithfully while keeping tests
//! reproducible. Metering is the load-bearing part — the experiments'
//! communication columns come straight from here.

use crate::netstats::NetStats;
use crate::{ClusterError, SiteId};
use relation::{FxHashMap, FxHashSet, Sym, Value};
use std::collections::VecDeque;

/// Payloads that know their wire size (and optionally how many eqids they
/// carry, for the Fig. 10 metric).
pub trait Wire {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;

    /// Number of eqids in the payload (0 for non-eqid messages).
    fn eqid_count(&self) -> usize {
        0
    }
}

/// A synchronous, metered `n`-site message network.
#[derive(Debug)]
pub struct Network<M> {
    inboxes: Vec<VecDeque<(SiteId, M)>>,
    stats: NetStats,
}

impl<M: Wire> Network<M> {
    /// A network connecting `n` sites.
    pub fn new(n: usize) -> Self {
        Network {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            stats: NetStats::new(n),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.inboxes.len()
    }

    /// Ship `msg` from `src` to `dst`. Local sends are rejected — algorithms
    /// must branch to local processing instead, so that metering stays
    /// honest. Rejection is [`ClusterError::Loopback`], which carries only
    /// the site id: this check sits on the metering hot path (every
    /// protocol send crosses it), so the error arm must not format or
    /// allocate.
    pub fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError> {
        if src == dst {
            return Err(ClusterError::Loopback(src));
        }
        if dst >= self.inboxes.len() {
            return Err(ClusterError::UnknownSite(dst));
        }
        self.stats
            .record(src, dst, msg.wire_size(), msg.eqid_count());
        self.inboxes[dst].push_back((src, msg));
        Ok(())
    }

    /// Ship `msg` from `src` to `dst` and consume it immediately at the
    /// destination — fire-and-forget metering for payloads the receiving
    /// site absorbs into local state without replying (e.g. eqids fed into
    /// an HEV). Identical accounting to [`Network::send`], no inbox entry,
    /// and the same zero-alloc loopback rejection.
    pub fn ship(&mut self, src: SiteId, dst: SiteId, msg: &M) -> Result<(), ClusterError> {
        if src == dst {
            return Err(ClusterError::Loopback(src));
        }
        if dst >= self.inboxes.len() {
            return Err(ClusterError::UnknownSite(dst));
        }
        self.stats
            .record(src, dst, msg.wire_size(), msg.eqid_count());
        Ok(())
    }

    /// Ship `msg` from `src` to every other site (`n−1` messages).
    pub fn broadcast(&mut self, src: SiteId, msg: M) -> Result<(), ClusterError>
    where
        M: Clone,
    {
        for dst in 0..self.inboxes.len() {
            if dst != src {
                self.send(src, dst, msg.clone())?;
            }
        }
        Ok(())
    }

    /// Drain the inbox of `site` in FIFO order.
    pub fn drain(&mut self, site: SiteId) -> Vec<(SiteId, M)> {
        self.inboxes[site].drain(..).collect()
    }

    /// Receive a single message, if any.
    pub fn recv(&mut self, site: SiteId) -> Option<(SiteId, M)> {
        self.inboxes[site].pop_front()
    }

    /// Are all inboxes empty? (protocol-completion assertion)
    pub fn quiescent(&self) -> bool {
        self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Reset statistics (inboxes must be empty).
    pub fn reset_stats(&mut self) {
        debug_assert!(self.quiescent());
        self.stats.reset();
    }
}

/// One substrate a round-structured protocol can run on: the simulated
/// [`Network`] (modeled `|M|` only) or a [`crate::net::ByteNetwork`]
/// (real serialized frames over in-process channels or TCP sockets).
///
/// Detectors hold a `Box<dyn MsgTransport<M>>` and drive send/drain
/// rounds without knowing which substrate is underneath; both implement
/// identical modeled accounting ([`MsgTransport::stats`]), and byte
/// backends additionally expose the measured on-wire traffic
/// ([`MsgTransport::wire_stats`]).
pub trait MsgTransport<M>: std::fmt::Debug + Send {
    /// Number of sites.
    fn n_sites(&self) -> usize;

    /// Ship `msg` from `src` to `dst` (loopback and out-of-range sites
    /// rejected, as by [`Network::send`]).
    fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError>;

    /// Deliver every in-flight message addressed to `site`. Fallible:
    /// byte backends can hit truncated frames or disconnects.
    fn try_drain(&mut self, site: SiteId) -> Result<Vec<(SiteId, M)>, ClusterError>;

    /// Are all links idle? (protocol-completion assertion)
    fn quiescent(&self) -> bool;

    /// Modeled `|M|` statistics.
    fn stats(&self) -> &NetStats;

    /// Measured on-wire statistics, when the substrate ships real bytes.
    fn wire_stats(&self) -> Option<&NetStats> {
        None
    }

    /// Whole-run transport counters, when the substrate ships real bytes.
    fn transport_meter(&self) -> Option<crate::net::TransportMeter> {
        None
    }

    /// Reset every meter (links must be idle).
    fn reset_stats(&mut self);
}

impl<M: Wire + std::fmt::Debug + Send> MsgTransport<M> for Network<M> {
    fn n_sites(&self) -> usize {
        Network::n_sites(self)
    }

    fn send(&mut self, src: SiteId, dst: SiteId, msg: M) -> Result<(), ClusterError> {
        Network::send(self, src, dst, msg)
    }

    fn try_drain(&mut self, site: SiteId) -> Result<Vec<(SiteId, M)>, ClusterError> {
        Ok(Network::drain(self, site))
    }

    fn quiescent(&self) -> bool {
        Network::quiescent(self)
    }

    fn stats(&self) -> &NetStats {
        Network::stats(self)
    }

    fn reset_stats(&mut self) {
        Network::reset_stats(self);
    }
}

/// Wire accounting for **dictionary-encoded** payloads.
///
/// When values are interned ([`relation::ValuePool`]), a shipped value can
/// travel as its fixed-size symbol — but only if the receiving site can
/// resolve it, which means the dictionary *entry* must have crossed that
/// link once. `DictMeter` charges exactly that cost model, per ordered
/// `(src, dst)` link:
///
/// * every shipment of a symbol costs [`DictMeter::SYM_WIRE_SIZE`] (4 B);
/// * the *first* time a given symbol crosses a given link it additionally
///   costs one dictionary entry: the 4-byte symbol id plus the value's
///   full [`Value::wire_size`].
///
/// This preserves the paper's `|M|` semantics: nothing is free — a value
/// that crosses a link once pays (slightly more than) its raw wire size,
/// and only *repeat* shipments over the same link are cheap. The existing
/// `md5` and `raw_values` shipping modes are deliberately untouched; this
/// meter quantifies what a dictionary-shipping protocol *would* cost, and
/// backs the `wire_model` section of the benchmark report.
#[derive(Debug, Default)]
pub struct DictMeter {
    /// Symbols already resident at the destination, per ordered link.
    resident: FxHashMap<(SiteId, SiteId), FxHashSet<Sym>>,
    /// Cumulative bytes attributable to one-time dictionary entries.
    dict_bytes: u64,
    /// Cumulative bytes of the symbol stream itself.
    sym_bytes: u64,
}

impl DictMeter {
    /// Serialized size of one symbol (`u32`).
    pub const SYM_WIRE_SIZE: usize = 4;

    /// Fresh meter (no symbols resident anywhere).
    pub fn new() -> Self {
        DictMeter::default()
    }

    /// Cost in bytes of shipping `sym` (resolving to `value`) from `src`
    /// to `dst`, updating residency. First crossing of a link pays the
    /// one-time dictionary entry on top of the 4-byte symbol.
    pub fn ship_sym(&mut self, src: SiteId, dst: SiteId, sym: Sym, value: &Value) -> usize {
        debug_assert!(src != dst, "local access must not be metered");
        let mut cost = Self::SYM_WIRE_SIZE;
        self.sym_bytes += Self::SYM_WIRE_SIZE as u64;
        if self.resident.entry((src, dst)).or_default().insert(sym) {
            let entry = Self::SYM_WIRE_SIZE + value.wire_size();
            self.dict_bytes += entry as u64;
            cost += entry;
        }
        cost
    }

    /// A symbol's dictionary entry was invalidated cluster-wide (its pool
    /// slot was garbage-collected and the id recycled): future crossings
    /// must re-ship the entry.
    pub fn invalidate(&mut self, sym: Sym) {
        for set in self.resident.values_mut() {
            set.remove(&sym);
        }
    }

    /// Total bytes charged so far (symbols + dictionary entries).
    pub fn total_bytes(&self) -> u64 {
        self.sym_bytes + self.dict_bytes
    }

    /// Bytes attributable to one-time dictionary entries.
    pub fn dict_bytes(&self) -> u64 {
        self.dict_bytes
    }

    /// Bytes of the 4-byte-per-value symbol stream.
    pub fn sym_bytes(&self) -> u64 {
        self.sym_bytes
    }
}

/// Blanket wire impls for common payload shapes.
impl Wire for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Wire for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct EqidMsg(Vec<u64>);

    impl Wire for EqidMsg {
        fn wire_size(&self) -> usize {
            8 * self.0.len()
        }
        fn eqid_count(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn send_meters_and_delivers_fifo() {
        let mut net: Network<EqidMsg> = Network::new(3);
        net.send(0, 2, EqidMsg(vec![1])).unwrap();
        net.send(1, 2, EqidMsg(vec![2, 3])).unwrap();
        net.send(0, 2, EqidMsg(vec![4])).unwrap();
        let got = net.drain(2);
        assert_eq!(
            got,
            vec![
                (0, EqidMsg(vec![1])),
                (1, EqidMsg(vec![2, 3])),
                (0, EqidMsg(vec![4])),
            ]
        );
        assert_eq!(net.stats().total_messages(), 3);
        assert_eq!(net.stats().total_bytes(), 8 * 4);
        assert_eq!(net.stats().total_eqids(), 4);
        assert!(net.quiescent());
    }

    #[test]
    fn local_send_is_rejected_without_allocating() {
        let mut net: Network<EqidMsg> = Network::new(2);
        // Loopback rejection carries only the site id — no formatted
        // string on the metering path (`send` and `ship` alike).
        assert_eq!(
            net.send(1, 1, EqidMsg(vec![1])),
            Err(ClusterError::Loopback(1))
        );
        assert_eq!(
            net.ship(0, 0, &EqidMsg(vec![2])),
            Err(ClusterError::Loopback(0))
        );
        assert!(matches!(
            net.send(0, 9, EqidMsg(vec![1])),
            Err(ClusterError::UnknownSite(9))
        ));
        // Nothing was metered or delivered by the rejected calls.
        assert_eq!(net.stats().total_messages(), 0);
        assert!(net.quiescent());
        assert!(ClusterError::Loopback(1).to_string().contains("site 1"));
    }

    #[test]
    fn broadcast_counts_n_minus_1_messages() {
        let mut net: Network<EqidMsg> = Network::new(4);
        net.broadcast(1, EqidMsg(vec![7])).unwrap();
        assert_eq!(net.stats().total_messages(), 3);
        for s in [0usize, 2, 3] {
            assert_eq!(net.drain(s).len(), 1);
        }
        assert!(net.drain(1).is_empty());
    }

    #[test]
    fn recv_single() {
        let mut net: Network<u64> = Network::new(2);
        net.send(0, 1, 42).unwrap();
        assert_eq!(net.recv(1), Some((0, 42)));
        assert_eq!(net.recv(1), None);
    }

    #[test]
    fn dict_meter_charges_entry_once_per_link() {
        let mut m = DictMeter::new();
        let v = Value::str("a long street name value"); // 24 + 4 B raw
                                                        // First crossing of 0→1: 4 B symbol + (4 + 28) B dictionary entry.
        assert_eq!(m.ship_sym(0, 1, 7, &v), 4 + 4 + v.wire_size());
        // Repeat on the same link: just the symbol.
        assert_eq!(m.ship_sym(0, 1, 7, &v), 4);
        // A different link pays its own entry (dictionaries are per site).
        assert_eq!(m.ship_sym(0, 2, 7, &v), 4 + 4 + v.wire_size());
        // Direction matters: 1→0 is a separate link from 0→1.
        assert_eq!(m.ship_sym(1, 0, 7, &v), 4 + 4 + v.wire_size());
        assert_eq!(m.sym_bytes(), 16);
        assert_eq!(m.dict_bytes(), 3 * (4 + v.wire_size() as u64));
        assert_eq!(m.total_bytes(), m.sym_bytes() + m.dict_bytes());
    }

    #[test]
    fn dict_meter_invalidation_recharges_entry() {
        let mut m = DictMeter::new();
        let v = Value::int(44);
        m.ship_sym(0, 1, 3, &v);
        assert_eq!(m.ship_sym(0, 1, 3, &v), 4, "resident");
        // Pool GC recycled symbol 3: receivers must be re-taught.
        m.invalidate(3);
        let w = Value::int(99);
        assert_eq!(m.ship_sym(0, 1, 3, &w), 4 + 4 + w.wire_size());
    }

    #[test]
    fn dict_meter_repeat_heavy_stream_beats_raw_shipping() {
        // The model's point: a skewed stream of wide values approaches
        // 4 B/value on the wire, where raw shipping pays full size each
        // time. (The md5/raw modes of the horizontal detector keep their
        // own |M| accounting — this meter is a what-if model.)
        let mut m = DictMeter::new();
        let v = Value::str("Glenna Goodacre Boulevard");
        let raw: u64 = (0..1000).map(|_| v.wire_size() as u64).sum();
        let mut dict = 0u64;
        for _ in 0..1000 {
            dict += m.ship_sym(0, 1, 1, &v) as u64;
        }
        assert!(dict < raw / 5, "dict {dict} vs raw {raw}");
    }
}
