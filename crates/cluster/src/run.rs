//! The per-node frame runtime: what one site's **thread or process**
//! owns when every site is a real unit of execution.
//!
//! [`crate::net::ByteNetwork`] holds all `n²` links in one struct and is
//! driven by a single thread. This module splits the same substrate into
//! `n` independent [`Node`]s — each owning its write halves, its inbox,
//! and its own meters — so a detector can run one OS thread (or one OS
//! process) per site, communicating *only* via frames:
//!
//! * [`mem_mesh`] — `n` nodes over in-process frame channels (each send
//!   delivers one complete `(method, body)` frame into the receiver's
//!   inbox; receivers block, senders don't);
//! * [`tcp_mesh`] — `n` nodes over the localhost TCP mesh, each node's
//!   inbound links serviced by its own reader threads (joined on drop);
//! * [`join_mesh`](crate::net::join_mesh) + [`Node::from_endpoint`] —
//!   the multi-process former: every participating process builds its
//!   own node over fixed localhost ports.
//!
//! # Metering
//!
//! Each node meters its *sends* with exactly the [`ByteNetwork::send`]
//! recipe (modeled `|M|`, measured wire bytes, and the transport-meter
//! identity `wire == modeled + structural − saved`), into node-local
//! [`NetStats`] matrices. Merging every node's meters therefore
//! reproduces, counter for counter, what a single-threaded
//! [`ByteNetwork`] drive of the same frames would have recorded — the
//! differential suites assert this. Protocol messages go through
//! [`Node::send`]; runtime control traffic (acks, wave barriers, op
//! shipments) goes through [`Node::send_ctrl`], which is framed and
//! wire-metered identically but contributes **zero** modeled `|M|` and
//! zero modeled messages — the model meters the detection protocol, not
//! the harness that schedules it.
//!
//! [`ByteNetwork`]: crate::net::ByteNetwork
//! [`ByteNetwork::send`]: crate::net::ByteNetwork::send

use crate::net::frame::{
    FRAME_HEADER_BYTES, FRAME_METHOD_BYTES, MAX_FRAME_BYTES, METHOD_LZ, METHOD_STORED,
};
use crate::net::tcp::{self, Inbound, NodeEndpoint, ReaderGuard, TcpLink};
use crate::net::{decode_body, ByteTransport, Compression, FrameCodec, TransportMeter};
use crate::{lz, ClusterError, NetStats, SiteId};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// How long a node waits for an expected frame before declaring the
/// peer dead. Generous: on a loaded single-core box, n site threads and
/// their readers all contend for the one CPU.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A node's write halves.
#[derive(Debug)]
enum TxSide {
    /// In-process: each send delivers one complete frame into the
    /// destination's inbox channel.
    Mem(Vec<Option<Sender<Inbound>>>),
    /// TCP write halves (the destination's reader threads feed its
    /// inbox).
    Tcp(Vec<Option<TcpLink>>),
}

/// One site's endpoint in an `n`-node mesh: write halves to every peer,
/// a blocking inbox of inbound frames, and send-side meters. `Send` —
/// hand each node to its thread (or build one per process).
#[derive(Debug)]
pub struct Node {
    n: usize,
    me: SiteId,
    tx: TxSide,
    rx: Receiver<Inbound>,
    /// TCP reader threads for this node's inbound links (joined on drop).
    _guard: Option<ReaderGuard>,
    compression: Compression,
    /// Modeled `|M|` of this node's sends (row `me` of the global matrix).
    stats: NetStats,
    /// Measured on-wire bytes of this node's sends, framing included.
    wire: NetStats,
    meter: TransportMeter,
    scratch: Vec<u8>,
}

impl Node {
    fn new(
        n: usize,
        me: SiteId,
        tx: TxSide,
        rx: Receiver<Inbound>,
        guard: Option<ReaderGuard>,
    ) -> Self {
        Node {
            n,
            me,
            tx,
            rx,
            _guard: guard,
            compression: Compression::default(),
            stats: NetStats::new(n),
            wire: NetStats::new(n),
            meter: TransportMeter::default(),
            scratch: Vec::new(),
        }
    }

    /// Wrap a multi-process [`NodeEndpoint`] (from
    /// [`crate::net::join_mesh`]) as a runtime node.
    pub fn from_endpoint(n: usize, me: SiteId, ep: NodeEndpoint) -> Self {
        Node::new(n, me, TxSide::Tcp(ep.tx), ep.rx, Some(ep.guard))
    }

    /// Select the per-frame body packing (default: none).
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Number of nodes in the mesh.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// This node's id.
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// Ship a **protocol** message: full [`crate::net::ByteNetwork`]
    /// accounting (modeled `|M|` + wire).
    pub fn send<M: FrameCodec>(&mut self, dst: SiteId, msg: &M) -> Result<(), ClusterError> {
        self.send_inner(dst, msg, true)
    }

    /// Ship a **control** frame: framed and wire-metered like any other
    /// frame, but zero modeled `|M|` and zero modeled messages. Control
    /// messages should declare `wire_size() == 0` (their whole encoding
    /// is structural overhead).
    pub fn send_ctrl<M: FrameCodec>(&mut self, dst: SiteId, msg: &M) -> Result<(), ClusterError> {
        self.send_inner(dst, msg, false)
    }

    fn send_inner<M: FrameCodec>(
        &mut self,
        dst: SiteId,
        msg: &M,
        modeled: bool,
    ) -> Result<(), ClusterError> {
        if dst == self.me {
            return Err(ClusterError::Loopback(dst));
        }
        if dst >= self.n {
            return Err(ClusterError::UnknownSite(dst));
        }
        self.scratch.clear();
        let structural = msg.encode_frame(&mut self.scratch);
        debug_assert_eq!(
            self.scratch.len(),
            msg.wire_size() + structural,
            "encoder broke the overhead identity"
        );
        if self.scratch.len() + FRAME_METHOD_BYTES > MAX_FRAME_BYTES {
            return Err(ClusterError::Transport(format!(
                "refusing to send an oversized message ({} > {MAX_FRAME_BYTES} bytes serialized)",
                self.scratch.len() + FRAME_METHOD_BYTES
            )));
        }
        let packed;
        let (method, body): (u8, &[u8]) = match self.compression {
            Compression::None => (METHOD_STORED, &self.scratch),
            Compression::Lz => {
                packed = lz::compress(&self.scratch);
                if packed.len() < self.scratch.len() {
                    (METHOD_LZ, &packed)
                } else {
                    (METHOD_STORED, &self.scratch)
                }
            }
        };
        match &mut self.tx {
            TxSide::Mem(chans) => {
                let chan = chans[dst]
                    .as_ref()
                    .expect("off-diagonal links always exist");
                chan.send((self.me, Ok((method, body.to_vec()))))
                    .map_err(|_| {
                        ClusterError::Transport(format!("node {dst} hung up (inbox closed)"))
                    })?;
            }
            TxSide::Tcp(links) => {
                let link = links[dst]
                    .as_mut()
                    .expect("off-diagonal links always exist");
                link.send_frame(method, body)?;
            }
        }
        let wire_len = FRAME_HEADER_BYTES + FRAME_METHOD_BYTES + body.len();
        if modeled {
            self.stats
                .record(self.me, dst, msg.wire_size(), msg.eqid_count());
            self.meter.modeled_bytes += msg.wire_size() as u64;
            self.meter.structural_bytes +=
                (structural + FRAME_HEADER_BYTES + FRAME_METHOD_BYTES) as u64;
        } else {
            // A control frame is all structure: every serialized byte is
            // harness overhead the |M| model ignores.
            self.meter.structural_bytes +=
                (self.scratch.len() + FRAME_HEADER_BYTES + FRAME_METHOD_BYTES) as u64;
        }
        self.wire.record(self.me, dst, wire_len, 0);
        self.meter.frames += 1;
        self.meter.wire_bytes += wire_len as u64;
        self.meter.saved_bytes += (self.scratch.len() - body.len()) as u64;
        Ok(())
    }

    /// Block for the next inbound frame: `(src, method, body)`. Errors
    /// forwarded by a reader thread (mid-stream disconnect) and timeouts
    /// surface as [`ClusterError::Transport`].
    pub fn recv(&mut self) -> Result<(SiteId, u8, Vec<u8>), ClusterError> {
        match self.recv_opt()? {
            Some(frame) => Ok(frame),
            None => Err(ClusterError::Transport(
                "timed out waiting for a frame (peer node gone?)".into(),
            )),
        }
    }

    /// Block up to [`RECV_TIMEOUT`] for a frame; `Ok(None)` on timeout.
    /// For idle loops (a site waiting for its next batch) where silence
    /// is normal, not a dead peer.
    pub fn recv_opt(&mut self) -> Result<Option<(SiteId, u8, Vec<u8>)>, ClusterError> {
        match self.rx.recv_timeout(RECV_TIMEOUT) {
            Ok((src, Ok((method, body)))) => Ok(Some((src, method, body))),
            Ok((src, Err(e))) => Err(ClusterError::Transport(format!(
                "link from node {src} failed: {e}"
            ))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::Transport(
                "inbox closed: all senders and readers are gone".into(),
            )),
        }
    }

    /// Non-blocking poll: `Ok(None)` when the inbox is currently empty.
    pub fn try_recv(&mut self) -> Result<Option<(SiteId, u8, Vec<u8>)>, ClusterError> {
        match self.rx.try_recv() {
            Ok((src, Ok((method, body)))) => Ok(Some((src, method, body))),
            Ok((src, Err(e))) => Err(ClusterError::Transport(format!(
                "link from node {src} failed: {e}"
            ))),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(ClusterError::Transport(
                "inbox closed: all senders and readers are gone".into(),
            )),
        }
    }

    /// Block for the next frame and decode it as `M` (see
    /// [`decode_body`]).
    pub fn recv_msg<M: FrameCodec>(&mut self) -> Result<(SiteId, M), ClusterError> {
        let (src, method, body) = self.recv()?;
        Ok((src, decode_body(method, body)?))
    }

    /// Modeled `|M|` of this node's sends.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Measured on-wire bytes of this node's sends.
    pub fn wire_stats(&self) -> &NetStats {
        &self.wire
    }

    /// This node's transport counters.
    pub fn meter(&self) -> TransportMeter {
        self.meter
    }

    /// Reset this node's meters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.wire.reset();
        self.meter = TransportMeter::default();
    }
}

/// `n` nodes over in-process frame channels. Deterministic framing, no
/// sockets — the default substrate for thread-per-site runs.
pub fn mem_mesh(n: usize) -> Vec<Node> {
    let (txs, rxs): (Vec<Sender<Inbound>>, Vec<Receiver<Inbound>>) =
        (0..n).map(|_| channel()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(me, rx)| {
            let chans = txs
                .iter()
                .enumerate()
                .map(|(dst, tx)| (dst != me).then(|| tx.clone()))
                .collect();
            Node::new(n, me, TxSide::Mem(chans), rx, None)
        })
        .collect()
}

/// `n` nodes over the localhost TCP mesh (ephemeral ports, in-process).
/// Each node's inbound links are serviced by its own reader threads,
/// joined when the node drops.
pub fn tcp_mesh(n: usize) -> Result<Vec<Node>, ClusterError> {
    let eps = tcp::TcpMesh::localhost(n)?.into_node_endpoints();
    Ok(eps
        .into_iter()
        .enumerate()
        .map(|(me, ep)| Node::from_endpoint(n, me, ep))
        .collect())
}

/// Join an `n`-node **multi-process** mesh on fixed localhost ports as
/// node `me` (see [`crate::net::join_mesh`]).
pub fn join(n: usize, me: SiteId, base_port: u16) -> Result<Node, ClusterError> {
    Ok(Node::from_endpoint(
        n,
        me,
        tcp::join_mesh(n, me, base_port)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::bytes;
    use crate::Wire;

    #[derive(Debug, Clone, PartialEq)]
    struct Nums(Vec<u64>);

    impl Wire for Nums {
        fn wire_size(&self) -> usize {
            8 * self.0.len()
        }
    }

    impl FrameCodec for Nums {
        fn encode_frame(&self, out: &mut Vec<u8>) -> usize {
            out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
            for v in &self.0 {
                out.extend_from_slice(&v.to_le_bytes());
            }
            4
        }

        fn decode_frame(body: &[u8]) -> Result<Self, ClusterError> {
            let mut r = bytes::Reader::new(body);
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                v.push(r.u64()?);
            }
            r.finish()?;
            Ok(Nums(v))
        }
    }

    fn exercise(mut nodes: Vec<Node>) {
        // Spawn every node on its own thread; node 0 is the hub.
        let n = nodes.len();
        let hub = nodes.remove(0);
        let workers: Vec<_> = nodes
            .into_iter()
            .map(|mut node| {
                std::thread::spawn(move || {
                    let (src, msg): (SiteId, Nums) = node.recv_msg().unwrap();
                    assert_eq!(src, 0);
                    let reply = Nums(msg.0.iter().map(|v| v * 2).collect());
                    node.send(0, &reply).unwrap();
                    node
                })
            })
            .collect();
        let hub = std::thread::spawn(move || {
            let mut hub = hub;
            for dst in 1..n {
                hub.send(dst, &Nums(vec![dst as u64, 7])).unwrap();
            }
            let mut got = Vec::new();
            for _ in 1..n {
                let (src, msg): (SiteId, Nums) = hub.recv_msg().unwrap();
                got.push((src, msg));
            }
            got.sort_by_key(|(s, _)| *s);
            assert_eq!(
                got,
                (1..n)
                    .map(|s| (s, Nums(vec![2 * s as u64, 14])))
                    .collect::<Vec<_>>()
            );
            hub
        })
        .join()
        .unwrap();

        // Meters merge to the whole-mesh picture.
        let mut stats = hub.stats().clone();
        let mut meter = hub.meter();
        for w in workers {
            let w = w.join().unwrap();
            stats.merge(w.stats());
            let m = w.meter();
            meter.frames += m.frames;
            meter.wire_bytes += m.wire_bytes;
            meter.modeled_bytes += m.modeled_bytes;
            meter.structural_bytes += m.structural_bytes;
            meter.saved_bytes += m.saved_bytes;
        }
        assert_eq!(stats.total_messages(), 2 * (n as u64 - 1));
        assert_eq!(stats.total_bytes(), 2 * (n as u64 - 1) * 16);
        assert_eq!(meter.frames, 2 * (n as u64 - 1));
        assert_eq!(
            meter.wire_bytes,
            meter.modeled_bytes + meter.structural_bytes - meter.saved_bytes
        );
        // Prove the meters match what a single-threaded ByteNetwork
        // records for the same message set.
        let mut reference: crate::net::ByteNetwork<Nums> = crate::net::ByteNetwork::in_memory(n);
        for dst in 1..n {
            reference.send(0, dst, Nums(vec![dst as u64, 7])).unwrap();
            reference.try_drain(dst).unwrap();
            reference
                .send(dst, 0, Nums(vec![2 * dst as u64, 14]))
                .unwrap();
            reference.try_drain(0).unwrap();
        }
        assert_eq!(stats.total_bytes(), reference.stats().total_bytes());
        assert_eq!(meter.wire_bytes, reference.meter().wire_bytes);
        assert_eq!(meter.structural_bytes, reference.meter().structural_bytes);
    }

    #[test]
    fn mem_mesh_round_trips_and_meters_like_bytenetwork() {
        exercise(mem_mesh(4));
    }

    #[test]
    fn tcp_mesh_round_trips_and_meters_like_bytenetwork() {
        exercise(tcp_mesh(4).unwrap());
    }

    #[test]
    fn ctrl_frames_are_wire_only() {
        /// A control frame: zero modeled size, all structure.
        #[derive(Debug, PartialEq)]
        struct Ack;
        impl Wire for Ack {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl FrameCodec for Ack {
            fn encode_frame(&self, out: &mut Vec<u8>) -> usize {
                out.push(0xAC);
                1
            }
            fn decode_frame(body: &[u8]) -> Result<Self, ClusterError> {
                if body == [0xAC] {
                    Ok(Ack)
                } else {
                    Err(ClusterError::Transport("not an ack".into()))
                }
            }
        }
        let mut nodes = mem_mesh(2);
        let mut b = nodes.pop().unwrap();
        let mut a = nodes.pop().unwrap();
        a.send_ctrl(1, &Ack).unwrap();
        let (src, msg): (SiteId, Ack) = b.recv_msg().unwrap();
        assert_eq!((src, msg), (0, Ack));
        // No modeled |M|, no modeled messages — but real wire bytes and
        // the meter identity still holds.
        assert_eq!(a.stats().total_messages(), 0);
        assert_eq!(a.stats().total_bytes(), 0);
        assert_eq!(a.wire_stats().total_messages(), 1);
        let m = a.meter();
        assert_eq!(m.frames, 1);
        assert_eq!(m.wire_bytes, 5 + 1);
        assert_eq!(
            m.wire_bytes,
            m.modeled_bytes + m.structural_bytes - m.saved_bytes
        );
    }

    #[test]
    fn loopback_and_unknown_nodes_are_rejected() {
        let mut nodes = mem_mesh(2);
        let e = nodes[1].send(1, &Nums(vec![1])).unwrap_err();
        assert_eq!(e, ClusterError::Loopback(1));
        let e = nodes[0].send(9, &Nums(vec![1])).unwrap_err();
        assert!(matches!(e, ClusterError::UnknownSite(9)));
    }

    #[test]
    fn hung_up_peer_surfaces_as_transport_error() {
        let mut nodes = mem_mesh(2);
        let gone = nodes.pop().unwrap();
        drop(gone);
        let e = nodes[0].send(1, &Nums(vec![1])).unwrap_err();
        assert!(matches!(e, ClusterError::Transport(_)), "{e:?}");
    }
}
