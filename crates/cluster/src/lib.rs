//! Metered in-process distributed substrate.
//!
//! The paper evaluates on an Amazon EC2 cluster with one fragment per
//! instance. This crate is the substitution documented in `DESIGN.md`: sites
//! are in-process fragment holders and *every* cross-site payload flows
//! through a [`Network`] that meters messages, bytes and eqid shipments per
//! `(src, dst)` pair. A configurable [`CostModel`] converts the meter into a
//! *simulated network time*, so experiments can report both wall-clock time
//! and the communication-dominated elapsed time the paper measures.
//!
//! Modules:
//!
//! * [`netstats`] — counters and the cost model,
//! * [`transport`] — the generic, synchronous, metered message network,
//!   and the [`MsgTransport`] abstraction real byte backends plug into,
//! * [`net`] — the **real byte-level transport**: length-prefixed framing
//!   ([`net::ByteTransport`]), a deterministic in-process framed channel,
//!   a `TcpListener`/`TcpStream` localhost mesh, and [`net::ByteNetwork`]
//!   which serializes typed messages to frames and meters modeled `|M|`
//!   and measured on-wire bytes side by side,
//! * [`codec`] — the pluggable payload codecs ([`PayloadCodec`]:
//!   [`codec::RawValues`], [`codec::Md5Digest`], [`codec::DictSyms`],
//!   [`codec::LzBlock`]) every value-shipping protocol encodes through,
//!   plus the receiver-side half ([`codec::ReceiverCodec`]) that rebuilds
//!   digests from received payloads only,
//! * [`lz`] — the in-tree LZ77-class block compressor behind
//!   [`codec::CodecKind::Lz`] (no-dep, like [`md5`]),
//! * [`md5`] — RFC 1321, the digest primitive behind the §6 optimization,
//! * [`partition`] — vertical (§2.2, projections with key, replication
//!   allowed) and horizontal (disjoint selections) partitioners.

pub mod codec;
pub mod lz;
pub mod md5;
pub mod net;
pub mod netstats;
pub mod partition;
pub mod run;
pub mod transport;

pub use codec::{CodecKind, PayloadCodec, ReceiverCodec, WireValue};
pub use net::{ByteNetwork, ByteTransport, Compression, FrameCodec, TransportKind, TransportMeter};
pub use netstats::{CostModel, NetReport, NetStats};
pub use transport::{DictMeter, MsgTransport, Network, Wire};

/// Identifier of a site `S_i`. Sites are numbered `0..n`.
pub type SiteId = usize;

/// Errors from the distribution substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A partition scheme does not cover the schema / violates key rules.
    BadScheme(String),
    /// A tuple matched no horizontal fragment (or more than one).
    Routing(String),
    /// A site id out of range.
    UnknownSite(SiteId),
    /// A metered send addressed to the sending site itself. Local work is
    /// never `|M|`; algorithms must branch to local processing instead.
    /// Carries only the site id — loopback rejection sits on the metering
    /// hot path and must not allocate.
    Loopback(SiteId),
    /// A byte-transport failure: truncated or oversized frame, mid-stream
    /// disconnect, malformed payload encoding, or socket error.
    Transport(String),
    /// A bare dictionary symbol arrived on an ordered link before the
    /// delta that teaches it — a receiver-side codec protocol error
    /// ([`codec::ReceiverCodec`]). Carries the link and the symbol so a
    /// multi-site codec bug names the exact `(src, dst)` session at
    /// fault.
    UntaughtSymbol {
        /// Sending site of the link.
        src: SiteId,
        /// Receiving site of the link.
        dst: SiteId,
        /// The unresolvable dictionary symbol.
        sym: relation::Sym,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadScheme(s) => write!(f, "bad partition scheme: {s}"),
            ClusterError::Routing(s) => write!(f, "routing error: {s}"),
            ClusterError::UnknownSite(s) => write!(f, "unknown site {s}"),
            ClusterError::Loopback(s) => {
                write!(f, "site {s} attempted a metered send to itself")
            }
            ClusterError::Transport(s) => write!(f, "transport error: {s}"),
            ClusterError::UntaughtSymbol { src, dst, sym } => write!(
                f,
                "bare dictionary symbol {sym} arrived on link {src} → {dst} before its delta"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}
