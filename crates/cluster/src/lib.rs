//! Metered in-process distributed substrate.
//!
//! The paper evaluates on an Amazon EC2 cluster with one fragment per
//! instance. This crate is the substitution documented in `DESIGN.md`: sites
//! are in-process fragment holders and *every* cross-site payload flows
//! through a [`Network`] that meters messages, bytes and eqid shipments per
//! `(src, dst)` pair. A configurable [`CostModel`] converts the meter into a
//! *simulated network time*, so experiments can report both wall-clock time
//! and the communication-dominated elapsed time the paper measures.
//!
//! Modules:
//!
//! * [`netstats`] — counters and the cost model,
//! * [`transport`] — the generic, synchronous, metered message network,
//! * [`codec`] — the pluggable payload codecs ([`PayloadCodec`]:
//!   [`codec::RawValues`], [`codec::Md5Digest`], [`codec::DictSyms`])
//!   every value-shipping protocol encodes through,
//! * [`md5`] — RFC 1321, the digest primitive behind the §6 optimization,
//! * [`partition`] — vertical (§2.2, projections with key, replication
//!   allowed) and horizontal (disjoint selections) partitioners.

pub mod codec;
pub mod md5;
pub mod netstats;
pub mod partition;
pub mod transport;

pub use codec::{CodecKind, PayloadCodec, WireValue};
pub use netstats::{CostModel, NetReport, NetStats};
pub use transport::{DictMeter, Network, Wire};

/// Identifier of a site `S_i`. Sites are numbered `0..n`.
pub type SiteId = usize;

/// Errors from the distribution substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A partition scheme does not cover the schema / violates key rules.
    BadScheme(String),
    /// A tuple matched no horizontal fragment (or more than one).
    Routing(String),
    /// A site id out of range.
    UnknownSite(SiteId),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadScheme(s) => write!(f, "bad partition scheme: {s}"),
            ClusterError::Routing(s) => write!(f, "routing error: {s}"),
            ClusterError::UnknownSite(s) => write!(f, "unknown site {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}
