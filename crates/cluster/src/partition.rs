//! Data fragmentation (§2.2).
//!
//! * **Vertical**: `D_i = π_{X_i}(D)`, every fragment carries the key
//!   attribute so `D = ⋈_i D_i`. Attributes may be *replicated* across
//!   fragments (§5, Example 7(b)) — the optimizer exploits replication when
//!   placing HEVs.
//! * **Horizontal**: `D_i = σ_{F_i}(D)` with pairwise-disjoint predicates,
//!   `D = ⋃_i D_i`. Constructors for predicate lists, value groups and hash
//!   partitioning are provided; routing validates the "exactly one
//!   fragment" property.

use crate::{ClusterError, SiteId};
use relation::{AttrId, Predicate, Relation, Schema, Tuple, UpdateBatch, Value};
use std::sync::Arc;

/// A vertical partition-and-replication scheme.
#[derive(Debug, Clone)]
pub struct VerticalScheme {
    schema: Arc<Schema>,
    /// Attribute ids per site (key always included, first position).
    frags: Vec<Vec<AttrId>>,
    frag_schemas: Vec<Arc<Schema>>,
}

impl VerticalScheme {
    /// Build a scheme. The key attribute is added to any fragment missing
    /// it. Every schema attribute must appear in at least one fragment;
    /// replication (an attribute in several fragments) is allowed.
    pub fn new(schema: Arc<Schema>, frags: Vec<Vec<AttrId>>) -> Result<Self, ClusterError> {
        if frags.is_empty() {
            return Err(ClusterError::BadScheme("no fragments".into()));
        }
        let key = schema.key();
        let mut norm: Vec<Vec<AttrId>> = Vec::with_capacity(frags.len());
        for (i, mut f) in frags.into_iter().enumerate() {
            for &a in &f {
                if (a as usize) >= schema.arity() {
                    return Err(ClusterError::BadScheme(format!(
                        "fragment {i} references attribute #{a} outside schema"
                    )));
                }
            }
            // Key first, then the fragment's own attributes (deduplicated).
            f.retain(|&a| a != key);
            let mut seen = vec![false; schema.arity()];
            let mut attrs = vec![key];
            seen[key as usize] = true;
            for a in f {
                if !seen[a as usize] {
                    seen[a as usize] = true;
                    attrs.push(a);
                }
            }
            norm.push(attrs);
        }
        for a in 0..schema.arity() as AttrId {
            if !norm.iter().any(|f| f.contains(&a)) {
                return Err(ClusterError::BadScheme(format!(
                    "attribute `{}` not covered by any fragment",
                    schema.attr_name(a)
                )));
            }
        }
        let frag_schemas = norm
            .iter()
            .enumerate()
            .map(|(i, attrs)| {
                let names: Vec<&str> = attrs.iter().map(|&a| schema.attr_name(a)).collect();
                Schema::new(
                    format!("{}_V{}", schema.name(), i + 1),
                    &names,
                    schema.attr_name(key),
                )
                .expect("fragment schema is valid by construction")
            })
            .collect();
        Ok(VerticalScheme {
            schema,
            frags: norm,
            frag_schemas,
        })
    }

    /// Even round-robin scheme over `n` sites (key replicated everywhere):
    /// non-key attributes are dealt to sites in order. Handy default for
    /// experiments.
    pub fn round_robin(schema: Arc<Schema>, n: usize) -> Result<Self, ClusterError> {
        let key = schema.key();
        let n = n.max(1);
        let mut frags = vec![Vec::new(); n];
        let mut i = 0usize;
        for a in 0..schema.arity() as AttrId {
            if a == key {
                continue;
            }
            frags[i % n].push(a);
            i += 1;
        }
        VerticalScheme::new(schema, frags)
    }

    /// The global schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of fragments / sites.
    pub fn n_sites(&self) -> usize {
        self.frags.len()
    }

    /// Attribute ids held at `site` (key first).
    pub fn attrs_of(&self, site: SiteId) -> &[AttrId] {
        &self.frags[site]
    }

    /// All sites holding `attr` (≥ 1; > 1 under replication).
    pub fn sites_of(&self, attr: AttrId) -> Vec<SiteId> {
        (0..self.frags.len())
            .filter(|&s| self.frags[s].contains(&attr))
            .collect()
    }

    /// The first site holding `attr`.
    pub fn primary_site(&self, attr: AttrId) -> SiteId {
        self.sites_of(attr)
            .into_iter()
            .next()
            .expect("scheme covers every attribute")
    }

    /// Position of `attr` within the fragment of `site`, if present.
    pub fn local_pos(&self, site: SiteId, attr: AttrId) -> Option<usize> {
        self.frags[site].iter().position(|&a| a == attr)
    }

    /// The derived schema of fragment `site`.
    pub fn fragment_schema(&self, site: SiteId) -> &Arc<Schema> {
        &self.frag_schemas[site]
    }

    /// Partition a relation: `D_i = π_{X_i}(D)` with tuple ids preserved.
    /// Scans the source columns directly — each fragment row is interned
    /// from borrowed values, no intermediate `Tuple` per projection.
    pub fn partition(&self, d: &Relation) -> Vec<Relation> {
        let mut out: Vec<Relation> = self
            .frag_schemas
            .iter()
            .map(|s| Relation::new(s.clone()))
            .collect();
        let store = d.store();
        for (tid, row) in store.rows() {
            for (site, attrs) in self.frags.iter().enumerate() {
                out[site]
                    .insert_row(tid, store.project_values(row, attrs))
                    .expect("projection preserves unique tids");
            }
        }
        out
    }

    /// Project a batch update onto fragment `site` (`ΔD_i = π_{X_i}(ΔD)`).
    pub fn project_update(&self, site: SiteId, delta: &UpdateBatch) -> UpdateBatch {
        let mut out = UpdateBatch::new();
        for op in delta.ops() {
            match op {
                relation::Update::Insert(t) => out.insert(t.project(&self.frags[site])),
                relation::Update::Delete(tid) => out.delete(*tid),
            }
        }
        out
    }
}

/// A horizontal partition scheme: one selection predicate per site.
#[derive(Debug, Clone)]
pub struct HorizontalScheme {
    schema: Arc<Schema>,
    preds: Vec<Predicate>,
}

impl HorizontalScheme {
    /// Build from explicit predicates. Disjointness/totality is validated
    /// lazily per routed tuple (an error is raised for tuples matching zero
    /// or multiple fragments).
    pub fn new(schema: Arc<Schema>, preds: Vec<Predicate>) -> Result<Self, ClusterError> {
        if preds.is_empty() {
            return Err(ClusterError::BadScheme("no fragments".into()));
        }
        Ok(HorizontalScheme { schema, preds })
    }

    /// Hash partitioning on `attr` over `n` sites (total and disjoint by
    /// construction).
    pub fn by_hash(schema: Arc<Schema>, attr: AttrId, n: usize) -> Result<Self, ClusterError> {
        if n == 0 {
            return Err(ClusterError::BadScheme("no fragments".into()));
        }
        let preds = (0..n as u32)
            .map(|which| Predicate::HashMod {
                attr,
                buckets: n as u32,
                which,
            })
            .collect();
        HorizontalScheme::new(schema, preds)
    }

    /// Partition by value groups on `attr` (e.g. grade `A` / `B` / `C` in
    /// Fig. 2).
    pub fn by_values(
        schema: Arc<Schema>,
        attr: AttrId,
        groups: Vec<Vec<Value>>,
    ) -> Result<Self, ClusterError> {
        let preds = groups.into_iter().map(|g| Predicate::In(attr, g)).collect();
        HorizontalScheme::new(schema, preds)
    }

    /// The global schema (shared by all fragments).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of fragments / sites.
    pub fn n_sites(&self) -> usize {
        self.preds.len()
    }

    /// The selection predicate `F_i` of `site`.
    pub fn predicate(&self, site: SiteId) -> &Predicate {
        &self.preds[site]
    }

    /// Route a tuple to its unique fragment; errors when the scheme is not
    /// a partition for this tuple.
    pub fn route(&self, t: &Tuple) -> Result<SiteId, ClusterError> {
        self.route_with(t.tid, &|a| t.get(a))
    }

    /// Route by positional value accessor — the columnar path (no tuple
    /// materialization; `tid` is only used in error messages).
    pub fn route_with<'a>(
        &self,
        tid: relation::Tid,
        get: &impl Fn(AttrId) -> &'a Value,
    ) -> Result<SiteId, ClusterError> {
        let mut hit = None;
        for (i, p) in self.preds.iter().enumerate() {
            if p.eval_with(get) {
                if hit.is_some() {
                    return Err(ClusterError::Routing(format!(
                        "tuple {tid} matches multiple fragments"
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| ClusterError::Routing(format!("tuple {tid} matches no fragment")))
    }

    /// Partition a relation: `D_i = σ_{F_i}(D)` — a columnar scan; each
    /// selected row is interned into its fragment from borrowed values.
    pub fn partition(&self, d: &Relation) -> Result<Vec<Relation>, ClusterError> {
        let mut out: Vec<Relation> = (0..self.preds.len())
            .map(|_| Relation::new(self.schema.clone()))
            .collect();
        let store = d.store();
        for (tid, row) in store.rows() {
            let site = self.route_with(tid, &|a| store.value(row, a))?;
            out[site]
                .insert_row(tid, store.row_syms(row).map(|s| store.pool().resolve(s)))
                .expect("partitioning preserves unique tids");
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Value;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "a", "b", "c", "grade"], "id").unwrap()
    }

    fn rel(n: usize) -> Relation {
        let s = schema();
        let mut d = Relation::new(s);
        for i in 0..n {
            let grade = ["A", "B", "C"][i % 3];
            d.insert(Tuple::new(
                i as u64,
                vec![
                    Value::int(i as i64),
                    Value::int((i / 2) as i64),
                    Value::str(format!("b{i}")),
                    Value::int(-(i as i64)),
                    Value::str(grade),
                ],
            ))
            .unwrap();
        }
        d
    }

    #[test]
    fn vertical_scheme_includes_key_everywhere() {
        let s = schema();
        let v = VerticalScheme::new(s.clone(), vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(v.n_sites(), 2);
        assert_eq!(v.attrs_of(0), &[0, 1, 2]);
        assert_eq!(v.attrs_of(1), &[0, 3, 4]);
        assert_eq!(v.primary_site(3), 1);
        assert_eq!(v.local_pos(1, 4), Some(2));
        assert_eq!(v.local_pos(0, 4), None);
        assert_eq!(v.fragment_schema(0).to_string(), "R_V1(*id, a, b)");
    }

    #[test]
    fn vertical_scheme_rejects_uncovered_attr() {
        let s = schema();
        assert!(matches!(
            VerticalScheme::new(s, vec![vec![1], vec![2]]),
            Err(ClusterError::BadScheme(_))
        ));
    }

    #[test]
    fn vertical_replication_reported() {
        let s = schema();
        let v = VerticalScheme::new(s, vec![vec![1, 2], vec![2, 3, 4]]).unwrap();
        assert_eq!(v.sites_of(2), vec![0, 1]);
        assert_eq!(v.sites_of(1), vec![0]);
    }

    #[test]
    fn vertical_partition_projects_with_tids() {
        let s = schema();
        let d = rel(4);
        let v = VerticalScheme::new(s, vec![vec![1], vec![2, 3, 4]]).unwrap();
        let frags = v.partition(&d);
        assert_eq!(frags[0].len(), 4);
        assert_eq!(frags[1].len(), 4);
        let t2 = frags[0].get(2).unwrap();
        assert_eq!(t2.arity(), 2); // id + a
        assert_eq!(t2.get(1), &Value::int(1));
    }

    #[test]
    fn vertical_round_robin_covers_everything() {
        let s = schema();
        let v = VerticalScheme::round_robin(s.clone(), 3).unwrap();
        for a in 0..s.arity() as AttrId {
            assert!(!v.sites_of(a).is_empty());
        }
    }

    #[test]
    fn vertical_project_update() {
        let s = schema();
        let v = VerticalScheme::new(s, vec![vec![1], vec![2, 3, 4]]).unwrap();
        let mut delta = UpdateBatch::new();
        delta.insert(Tuple::new(
            9,
            vec![
                Value::int(9),
                Value::int(1),
                Value::str("x"),
                Value::int(0),
                Value::str("A"),
            ],
        ));
        delta.delete(3);
        let d0 = v.project_update(0, &delta);
        assert_eq!(d0.ops().len(), 2);
        match &d0.ops()[0] {
            relation::Update::Insert(t) => assert_eq!(t.arity(), 2),
            _ => panic!("expected insert"),
        }
    }

    #[test]
    fn horizontal_by_values_matches_fig2() {
        let s = schema();
        let grade = s.attr_id("grade").unwrap();
        let h = HorizontalScheme::by_values(
            s,
            grade,
            vec![
                vec![Value::str("A")],
                vec![Value::str("B")],
                vec![Value::str("C")],
            ],
        )
        .unwrap();
        let d = rel(6);
        let frags = h.partition(&d).unwrap();
        assert_eq!(frags.iter().map(Relation::len).sum::<usize>(), 6);
        assert_eq!(frags[0].len(), 2); // grades cycle A,B,C
        for t in frags[1].iter() {
            assert_eq!(t.get(grade), &Value::str("B"));
        }
    }

    #[test]
    fn horizontal_hash_is_total_and_disjoint() {
        let s = schema();
        let h = HorizontalScheme::by_hash(s, 0, 4).unwrap();
        let d = rel(100);
        let frags = h.partition(&d).unwrap();
        assert_eq!(frags.iter().map(Relation::len).sum::<usize>(), 100);
        // Spread across more than one bucket with overwhelming likelihood.
        assert!(frags.iter().filter(|f| !f.is_empty()).count() >= 2);
    }

    #[test]
    fn horizontal_routing_errors() {
        let s = schema();
        let grade = s.attr_id("grade").unwrap();
        // Overlapping predicates: grade A matches both.
        let h = HorizontalScheme::new(
            s.clone(),
            vec![
                Predicate::Eq(grade, Value::str("A")),
                Predicate::In(grade, vec![Value::str("A"), Value::str("B")]),
            ],
        )
        .unwrap();
        let d = rel(1);
        assert!(matches!(h.partition(&d), Err(ClusterError::Routing(_))));
        // Non-total: grade C matches nothing.
        let h2 = HorizontalScheme::new(s, vec![Predicate::Eq(grade, Value::str("A"))]).unwrap();
        let d3 = rel(3);
        assert!(matches!(h2.partition(&d3), Err(ClusterError::Routing(_))));
    }
}
