//! Human-readable data-quality reports.
//!
//! The violation set is the detector's raw output; a data steward wants it
//! grouped by rule with examples. [`QualityReport`] summarizes a
//! [`Violations`] container against its rule set and (optionally) the
//! relation, producing per-CFD counts, sample violating tuples and a
//! plain-text rendering — the shape of report the paper's motivating
//! scenarios (§1) imply.

use crate::cfd::{Cfd, CfdId};
use crate::violation::Violations;
use relation::{Relation, Schema, Tid};

/// Per-CFD summary.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    /// The rule id.
    pub cfd: CfdId,
    /// Rendered rule text (`([CC=44, zip] -> [street])`).
    pub rule: String,
    /// Constant or variable CFD.
    pub constant: bool,
    /// Number of violating tuples.
    pub count: usize,
    /// Up to `sample_limit` violating tuple ids (sorted).
    pub sample: Vec<Tid>,
}

/// A full report over a rule set.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// One summary per CFD, in rule order.
    pub rules: Vec<RuleSummary>,
    /// Total distinct violating tuples.
    pub dirty_tuples: usize,
    /// Total (cfd, tid) violation marks.
    pub total_marks: usize,
    /// Relation size the report was computed against, when known.
    pub relation_size: Option<usize>,
}

impl QualityReport {
    /// Build a report from a violation set. `sample_limit` caps per-rule
    /// examples.
    pub fn new(
        schema: &Schema,
        cfds: &[Cfd],
        violations: &Violations,
        relation: Option<&Relation>,
        sample_limit: usize,
    ) -> Self {
        let rules = cfds
            .iter()
            .map(|c| {
                let set = violations.of_cfd(c.id);
                let mut sample: Vec<Tid> = set.iter().copied().collect();
                sample.sort_unstable();
                sample.truncate(sample_limit);
                RuleSummary {
                    cfd: c.id,
                    rule: c.display(schema).to_string(),
                    constant: c.is_constant(),
                    count: set.len(),
                    sample,
                }
            })
            .collect();
        QualityReport {
            rules,
            dirty_tuples: violations.len(),
            total_marks: violations.total_marks(),
            relation_size: relation.map(Relation::len),
        }
    }

    /// Fraction of the relation that violates at least one rule
    /// (`None` when the relation size is unknown or zero).
    pub fn dirty_ratio(&self) -> Option<f64> {
        match self.relation_size {
            Some(n) if n > 0 => Some(self.dirty_tuples as f64 / n as f64),
            _ => None,
        }
    }

    /// Rules sorted by violation count, worst first.
    pub fn worst_rules(&self) -> Vec<&RuleSummary> {
        let mut v: Vec<&RuleSummary> = self.rules.iter().filter(|r| r.count > 0).collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.cfd.cmp(&b.cfd)));
        v
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "Data quality report").unwrap();
        match (self.relation_size, self.dirty_ratio()) {
            (Some(n), Some(r)) => writeln!(
                s,
                "  {} / {} tuples violate at least one rule ({:.1}%)",
                self.dirty_tuples,
                n,
                100.0 * r
            )
            .unwrap(),
            _ => writeln!(s, "  {} violating tuples", self.dirty_tuples).unwrap(),
        }
        writeln!(
            s,
            "  {} violation marks across {} rules",
            self.total_marks,
            self.rules.len()
        )
        .unwrap();
        for r in self.worst_rules() {
            writeln!(
                s,
                "  φ{} {} [{}]: {} violations, e.g. tuples {:?}",
                r.cfd + 1,
                r.rule,
                if r.constant { "constant" } else { "variable" },
                r.count,
                r.sample
            )
            .unwrap();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, Tuple, Value};

    fn setup() -> (std::sync::Arc<Schema>, Relation, Vec<Cfd>, Violations) {
        let s = Schema::new("EMP", &["id", "CC", "zip", "street", "city"], "id").unwrap();
        let mut d = Relation::new(s.clone());
        for (i, (street, city)) in [
            ("Mayfield", "NYC"),
            ("Mayfield", "EDI"),
            ("Crichton", "EDI"),
        ]
        .iter()
        .enumerate()
        {
            d.insert(Tuple::new(
                (i + 1) as Tid,
                vec![
                    Value::int((i + 1) as i64),
                    Value::int(44),
                    Value::str("EH4"),
                    Value::str(*street),
                    Value::str(*city),
                ],
            ))
            .unwrap();
        }
        let cfds = vec![
            Cfd::from_names(
                0,
                &s,
                &[("CC", Some(Value::int(44))), ("zip", None)],
                ("street", None),
            )
            .unwrap(),
            Cfd::from_names(
                1,
                &s,
                &[("CC", Some(Value::int(44)))],
                ("city", Some(Value::str("EDI"))),
            )
            .unwrap(),
        ];
        let v = crate::naive::detect(&cfds, &d);
        (s, d, cfds, v)
    }

    #[test]
    fn summarizes_counts_and_samples() {
        let (s, d, cfds, v) = setup();
        let rep = QualityReport::new(&s, &cfds, &v, Some(&d), 2);
        assert_eq!(rep.rules.len(), 2);
        assert_eq!(rep.rules[0].count, 3, "street clash hits all three");
        assert_eq!(rep.rules[1].count, 1, "only t1 has a wrong city");
        assert_eq!(rep.rules[0].sample.len(), 2, "sample capped");
        assert_eq!(rep.dirty_tuples, 3);
        assert_eq!(rep.total_marks, 4);
        assert_eq!(rep.relation_size, Some(3));
        let ratio = rep.dirty_ratio().unwrap();
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_rules_sorted_desc() {
        let (s, d, cfds, v) = setup();
        let rep = QualityReport::new(&s, &cfds, &v, Some(&d), 5);
        let worst = rep.worst_rules();
        assert_eq!(worst[0].cfd, 0);
        assert_eq!(worst[1].cfd, 1);
    }

    #[test]
    fn render_contains_rule_text() {
        let (s, d, cfds, v) = setup();
        let rep = QualityReport::new(&s, &cfds, &v, Some(&d), 3);
        let text = rep.render();
        assert!(text.contains("([CC=44, zip] -> [street])"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("variable"));
        assert!(text.contains("constant"));
    }

    #[test]
    fn clean_relation_renders_empty_rule_list() {
        let (s, d, cfds, _) = setup();
        let v = Violations::new(cfds.len());
        let rep = QualityReport::new(&s, &cfds, &v, Some(&d), 3);
        assert!(rep.worst_rules().is_empty());
        assert_eq!(rep.dirty_ratio(), Some(0.0));
    }
}
