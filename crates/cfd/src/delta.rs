//! Delta plans: an explicit operator IR for incremental CFD evaluation.
//!
//! Every incremental detector in this repository evaluates the same
//! implicit query per CFD `φ = (X → B, t_p)` and per update: *restrict*
//! the delta to the tuples matching `t_p[X]`'s constant atoms, *group*
//! the survivors by `X`, and *probe* `B` against the group (semi-naive
//! evaluation — one leg of the join is always the delta, base
//! conclusions are reused from the detector's indices). This module
//! makes that query an explicit plan of operators compiled from the
//! CFD, so the §5 optimizer can share operators **across** CFDs instead
//! of merging eqids only: two CFDs with the same `X` share one group-by
//! pass, and their constant atoms become residual [`DeltaOp::Restrict`]
//! predicates applied on the shared output (see [`crate::share`]).
//!
//! The IR also evaluates directly over [`ColumnStore`] column slices
//! ([`DeltaPlan::matching_rows`]): constants are resolved to interned
//! symbols once, so a restrict is a `u32` comparison over a contiguous
//! column — the batch-shaped path used by tests and coordinators.

use crate::cfd::{Cfd, CfdId};
use crate::pattern::PatternValue;
use relation::{AttrId, ColumnStore, RowId, Value};

/// One operator of a compiled delta plan, in pipeline order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Source: the normalized update batch (one leg restricted to Δ).
    ScanDelta,
    /// Group surviving rows by the LHS attributes, in LHS order. This is
    /// the shareable operator: identical `attrs` ⇒ identical group keys.
    GroupBy {
        /// `X` in LHS order (the group-key digest order of §6).
        attrs: Vec<AttrId>,
    },
    /// Residual predicate: keep rows whose attribute equals the constant
    /// LHS pattern atom. Applied per CFD on the shared group-by output.
    Restrict {
        /// The constrained LHS attribute.
        attr: AttrId,
        /// The required constant.
        value: Value,
    },
    /// Sink: probe the RHS attribute against the pattern — a constant
    /// pattern decides per tuple, a wildcard compares within the group.
    ProbeRhs {
        /// `B`.
        attr: AttrId,
        /// `t_p[B]`.
        pattern: PatternValue,
    },
}

/// The compiled plan of one CFD: `ScanDelta → [GroupBy] → Restrict* →
/// ProbeRhs`. Constant CFDs have no `GroupBy` (they are decided tuple
/// by tuple); variable CFDs group before filtering so the group-by
/// operator is textually identical for every CFD with the same LHS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// The CFD this plan evaluates.
    pub cfd: CfdId,
    /// Operators in pipeline order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaPlan {
    /// Compile `cfd` into its delta plan.
    pub fn compile(cfd: &Cfd) -> DeltaPlan {
        let mut ops = vec![DeltaOp::ScanDelta];
        if cfd.is_variable() {
            ops.push(DeltaOp::GroupBy {
                attrs: cfd.lhs.clone(),
            });
        }
        for (attr, value) in cfd.constant_atoms() {
            ops.push(DeltaOp::Restrict { attr, value });
        }
        ops.push(DeltaOp::ProbeRhs {
            attr: cfd.rhs,
            pattern: cfd.rhs_pattern.clone(),
        });
        DeltaPlan { cfd: cfd.id, ops }
    }

    /// The group-by attribute list, if this plan has one (variable CFDs).
    pub fn group_by(&self) -> Option<&[AttrId]> {
        self.ops.iter().find_map(|op| match op {
            DeltaOp::GroupBy { attrs } => Some(attrs.as_slice()),
            _ => None,
        })
    }

    /// The residual restrict predicates, in LHS order.
    pub fn restricts(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.ops.iter().filter_map(|op| match op {
            DeltaOp::Restrict { attr, value } => Some((*attr, value)),
            _ => None,
        })
    }

    /// Length of the longest common operator prefix with `other` — the
    /// number of operators a sharing compiler evaluates once for both.
    pub fn shared_prefix_len(&self, other: &DeltaPlan) -> usize {
        self.ops
            .iter()
            .zip(&other.ops)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Evaluate the restrict chain over column slices: the delta rows
    /// that satisfy every residual predicate (i.e. `matches_lhs`).
    /// Constants resolve to interned symbols once; each restrict is then
    /// a `u32` scan over a contiguous column. Rows survive in input
    /// order, so downstream grouping is deterministic.
    pub fn matching_rows(&self, store: &ColumnStore, delta_rows: &[RowId]) -> Vec<RowId> {
        let mut alive: Vec<RowId> = delta_rows.to_vec();
        for (attr, value) in self.restricts() {
            let Some(sym) = store.pool().lookup(value) else {
                return Vec::new(); // constant absent from the store
            };
            let col = store.col(attr);
            alive.retain(|&row| col[row as usize] == sym);
            if alive.is_empty() {
                break;
            }
        }
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Relation, Schema, Tuple};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "cc", "zip", "street", "city"], "id").unwrap()
    }

    fn variable_cfd(s: &Schema) -> Cfd {
        // (cc=44, zip → street): one constant atom, variable RHS.
        Cfd::from_names(
            0,
            s,
            &[("cc", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap()
    }

    fn constant_cfd(s: &Schema) -> Cfd {
        Cfd::from_names(
            1,
            s,
            &[("cc", Some(Value::int(1)))],
            ("city", Some(Value::str("NYC"))),
        )
        .unwrap()
    }

    #[test]
    fn compile_shapes() {
        let s = schema();
        let v = DeltaPlan::compile(&variable_cfd(&s));
        assert_eq!(v.ops[0], DeltaOp::ScanDelta);
        assert!(matches!(v.ops[1], DeltaOp::GroupBy { .. }));
        assert!(matches!(v.ops[2], DeltaOp::Restrict { .. }));
        assert!(matches!(v.ops[3], DeltaOp::ProbeRhs { .. }));
        assert_eq!(v.group_by(), Some(&[1 as AttrId, 2][..]));

        let c = DeltaPlan::compile(&constant_cfd(&s));
        assert!(c.group_by().is_none(), "constant CFDs decide per tuple");
        assert_eq!(c.restricts().count(), 1);
    }

    #[test]
    fn shared_prefix_reflects_lhs_overlap() {
        let s = schema();
        // Same LHS, different residual constant: share scan + group-by.
        let a = Cfd::from_names(
            0,
            &s,
            &[("cc", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        let b = Cfd::from_names(
            1,
            &s,
            &[("cc", Some(Value::int(1))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        let (pa, pb) = (DeltaPlan::compile(&a), DeltaPlan::compile(&b));
        assert_eq!(pa.shared_prefix_len(&pb), 2, "ScanDelta + GroupBy shared");

        // Different LHS: only the scan is common.
        let c = Cfd::from_names(2, &s, &[("city", None)], ("street", None)).unwrap();
        assert_eq!(pa.shared_prefix_len(&DeltaPlan::compile(&c)), 1);

        // Identical plans modulo the sink share everything up to it.
        let a2 = Cfd::from_names(
            3,
            &s,
            &[("cc", Some(Value::int(44))), ("zip", None)],
            ("city", None),
        )
        .unwrap();
        assert_eq!(pa.shared_prefix_len(&DeltaPlan::compile(&a2)), 3);
    }

    #[test]
    fn matching_rows_agrees_with_matches_lhs() {
        let s = schema();
        let cfds = [variable_cfd(&s), constant_cfd(&s)];
        let mut d = Relation::new(s.clone());
        for i in 0..50u64 {
            d.insert(Tuple::new(
                i,
                vec![
                    Value::int(i as i64),
                    Value::int((i % 3) as i64 * 22), // cc ∈ {0, 22, 44}
                    Value::str(format!("Z{}", i % 5)),
                    Value::str(format!("S{}", i % 7)),
                    Value::str(if i % 2 == 0 { "NYC" } else { "EDI" }),
                ],
            ))
            .unwrap();
        }
        let store = d.store();
        let rows: Vec<RowId> = store.rows().map(|(_, r)| r).collect();
        for cfd in &cfds {
            let plan = DeltaPlan::compile(cfd);
            let got = plan.matching_rows(store, &rows);
            let want: Vec<RowId> = rows
                .iter()
                .copied()
                .filter(|&r| {
                    let t = Tuple::new(
                        store.tid_of(r),
                        (0..s.arity() as AttrId)
                            .map(|a| store.value(r, a).clone())
                            .collect::<Vec<_>>(),
                    );
                    cfd.matches_lhs(&t)
                })
                .collect();
            assert_eq!(got, want, "cfd {}", cfd.id);
        }
        // A constant no row carries matches nothing without scanning.
        let ghost = Cfd::from_names(
            9,
            &s,
            &[("cc", Some(Value::int(999))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        assert!(DeltaPlan::compile(&ghost)
            .matching_rows(store, &rows)
            .is_empty());
    }
}
