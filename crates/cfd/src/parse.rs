//! A small text format for CFDs.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! cfd   := '(' '[' atoms ']' '->' '[' atom ']' ')' | '[' atoms ']' '->' '[' atom ']'
//! atoms := atom (',' atom)*
//! atom  := NAME ('=' value)?          -- no value or '_' means wildcard
//! value := INT | "'" chars "'" | bare-chars
//! ```
//!
//! Examples (the paper's Fig. 1):
//!
//! ```text
//! ([CC=44, zip] -> [street])
//! ([CC=44, AC=131] -> [city=EDI])
//! ```
//!
//! Bare values that parse as `i64` become integers; quote them to force
//! strings (`[CC='44'] -> [street]`).
//!
//! Every diagnostic carries a [`Span`] (1-based line/column plus fragment
//! length) via [`CfdError::At`], so tools like `cfdlint` point at the
//! exact offending input. [`parse_cfds`] stops at the first error;
//! [`parse_catalog`] keeps going and collects every line's diagnostic.

use crate::cfd::{Cfd, CfdId};
use crate::pattern::PatternValue;
use crate::{CfdError, Span};
use relation::{Schema, Value};

/// Parse a single CFD from text against `schema`, assigning `id`.
/// Diagnostics are located as if `input` were line 1 of a catalog.
pub fn parse_cfd(schema: &Schema, id: CfdId, input: &str) -> Result<Cfd, CfdError> {
    parse_cfd_at(schema, id, 1, input)
}

/// [`parse_cfd`] with an explicit 1-based source line for diagnostics.
pub fn parse_cfd_at(schema: &Schema, id: CfdId, line: usize, input: &str) -> Result<Cfd, CfdError> {
    let span = |start: usize, len: usize| Span {
        line,
        col: start + 1,
        len: len.max(1),
    };
    let mut base = input.len() - input.trim_start().len();
    let mut s = input.trim();
    if let Some(stripped) = s.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
        base += 1;
        base += stripped.len() - stripped.trim_start().len();
        s = stripped.trim();
    }

    let Some(arrow) = s.find("->") else {
        let t = input.trim();
        return Err(CfdError::Parse(format!("missing `->` in `{t}`")).at(span(base, s.len())));
    };
    let (lhs_part, rhs_part) = (&s[..arrow], &s[arrow + 2..]);

    let lhs_atoms = parse_bracketed(line, lhs_part, base)?;
    let rhs_atoms = parse_bracketed(line, rhs_part, base + arrow + 2)?;
    if rhs_atoms.len() != 1 {
        let start = base + arrow + 2 + (rhs_part.len() - rhs_part.trim_start().len());
        return Err(CfdError::Parse(format!(
            "RHS must have exactly one attribute, got {}",
            rhs_atoms.len()
        ))
        .at(span(start, rhs_part.trim().len())));
    }

    let mut lhs_ids = Vec::with_capacity(lhs_atoms.len());
    let mut lhs_pat = Vec::with_capacity(lhs_atoms.len());
    for atom in &lhs_atoms {
        lhs_ids.push(schema.attr_id(&atom.name).map_err(|_| {
            CfdError::UnknownAttribute(atom.name.clone()).at(span(atom.start, atom.len))
        })?);
        lhs_pat.push(atom.pattern.clone());
    }
    let rhs_atom = &rhs_atoms[0];
    let rhs_id = schema.attr_id(&rhs_atom.name).map_err(|_| {
        CfdError::UnknownAttribute(rhs_atom.name.clone()).at(span(rhs_atom.start, rhs_atom.len))
    })?;

    Cfd::new(
        id,
        schema,
        lhs_ids,
        rhs_id,
        lhs_pat,
        rhs_atom.pattern.clone(),
    )
    .map_err(|e| e.at(span(base, s.len())))
}

/// Parse several CFDs, one per non-empty, non-`#`-comment line, assigning
/// contiguous ids starting at 0. Stops at the first error; use
/// [`parse_catalog`] to collect every diagnostic.
pub fn parse_cfds(schema: &Schema, input: &str) -> Result<Vec<Cfd>, CfdError> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let id = out.len() as CfdId;
        out.push(parse_cfd_at(schema, id, lineno + 1, line)?);
    }
    Ok(out)
}

/// A fully-scanned catalog text: the rules that parsed (contiguous ids),
/// the 1-based source line of each, and every failed line's located
/// diagnostic — `cfdlint` reports them all instead of stopping at the
/// first.
#[derive(Debug, Clone, Default)]
pub struct ParsedCatalog {
    /// Rules that parsed, ids contiguous from 0.
    pub cfds: Vec<Cfd>,
    /// 1-based source line of each parsed rule (aligned with `cfds`).
    pub lines: Vec<usize>,
    /// Every diagnostic, each located via [`CfdError::At`].
    pub errors: Vec<CfdError>,
}

/// Parse a whole catalog, continuing past bad lines.
pub fn parse_catalog(schema: &Schema, input: &str) -> ParsedCatalog {
    let mut out = ParsedCatalog::default();
    for (lineno, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let id = out.cfds.len() as CfdId;
        match parse_cfd_at(schema, id, lineno + 1, line) {
            Ok(cfd) => {
                out.cfds.push(cfd);
                out.lines.push(lineno + 1);
            }
            Err(e) => out.errors.push(e),
        }
    }
    out
}

/// One parsed atom with its source position within the line.
struct Atom {
    name: String,
    pattern: PatternValue,
    start: usize,
    len: usize,
}

fn parse_bracketed(line: usize, part: &str, base: usize) -> Result<Vec<Atom>, CfdError> {
    let pbase = base + (part.len() - part.trim_start().len());
    let p = part.trim();
    let inner = p
        .strip_prefix('[')
        .and_then(|q| q.strip_suffix(']'))
        .ok_or_else(|| {
            CfdError::Parse(format!("expected `[...]`, got `{p}`")).at(Span {
                line,
                col: pbase + 1,
                len: p.len().max(1),
            })
        })?;
    let ibase = pbase + 1;
    let mut out = Vec::new();
    let mut off = 0usize;
    for raw in inner.split(',') {
        let start = ibase + off + (raw.len() - raw.trim_start().len());
        let atom = raw.trim();
        out.push(parse_atom(line, atom, start)?);
        off += raw.len() + 1;
    }
    Ok(out)
}

fn parse_atom(line: usize, atom: &str, start: usize) -> Result<Atom, CfdError> {
    let located = |len: usize| Span {
        line,
        col: start + 1,
        len: len.max(1),
    };
    if atom.is_empty() {
        return Err(CfdError::Parse("empty atom".into()).at(located(1)));
    }
    let (name, pattern) = match atom.split_once('=') {
        None => (atom.to_string(), PatternValue::Wildcard),
        Some((name, raw)) => {
            let name = name.trim().to_string();
            let raw = raw.trim();
            let pat = if raw == "_" {
                PatternValue::Wildcard
            } else if let Some(quoted) = raw.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
                PatternValue::Const(Value::str(quoted))
            } else if let Ok(i) = raw.parse::<i64>() {
                PatternValue::Const(Value::int(i))
            } else {
                PatternValue::Const(Value::str(raw))
            };
            (name, pat)
        }
    };
    Ok(Atom {
        name,
        pattern,
        start,
        len: atom.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap()
    }

    #[test]
    fn parses_fig1_phi1() {
        let s = schema();
        let c = parse_cfd(&s, 0, "([CC=44, zip] -> [street])").unwrap();
        assert!(c.is_variable());
        assert_eq!(c.lhs, vec![1, 3]);
        assert_eq!(c.rhs, 4);
        assert_eq!(c.lhs_pattern[0], PatternValue::Const(Value::int(44)));
        assert!(c.lhs_pattern[1].is_wildcard());
        assert_eq!(c.display(&s).to_string(), "([CC=44, zip] -> [street])");
    }

    #[test]
    fn parses_fig1_phi2() {
        let s = schema();
        let c = parse_cfd(&s, 1, "([CC=44, AC=131] -> [city=EDI])").unwrap();
        assert!(c.is_constant());
        assert_eq!(c.rhs_pattern, PatternValue::Const(Value::str("EDI")));
    }

    #[test]
    fn quoted_values_force_strings_and_allow_spaces() {
        let s = schema();
        let c = parse_cfd(&s, 0, "[zip='EH4 8LE'] -> [street]").unwrap();
        assert_eq!(c.lhs_pattern[0], PatternValue::Const(Value::str("EH4 8LE")));
        let c2 = parse_cfd(&s, 0, "[CC='44'] -> [street]").unwrap();
        assert_eq!(c2.lhs_pattern[0], PatternValue::Const(Value::str("44")));
    }

    #[test]
    fn underscore_is_wildcard() {
        let s = schema();
        let c = parse_cfd(&s, 0, "[CC=_, zip=_] -> [street=_]").unwrap();
        assert!(c.is_fd());
    }

    #[test]
    fn multi_line_parse_with_comments() {
        let s = schema();
        let text = "\n# Fig. 1\n([CC=44, zip] -> [street])\n\n([CC=44, AC=131] -> [city=EDI])\n";
        let cfds = parse_cfds(&s, text).unwrap();
        assert_eq!(cfds.len(), 2);
        assert_eq!(cfds[0].id, 0);
        assert_eq!(cfds[1].id, 1);
    }

    #[test]
    fn errors_are_reported_with_spans() {
        let s = schema();
        let unwrap_at = |e: CfdError| match e {
            CfdError::At { span, inner } => (span, *inner),
            other => panic!("expected located error, got {other:?}"),
        };
        let (span, inner) = unwrap_at(parse_cfd(&s, 0, "[CC=44] [street]").unwrap_err());
        assert!(matches!(inner, CfdError::Parse(_)));
        assert_eq!(span.line, 1);

        let (span, inner) = unwrap_at(parse_cfd(&s, 0, "[nope] -> [street]").unwrap_err());
        assert!(matches!(inner, CfdError::UnknownAttribute(ref a) if a == "nope"));
        assert_eq!((span.col, span.len), (2, 4)); // `nope` right after `[`

        let (_, inner) = unwrap_at(parse_cfd(&s, 0, "[CC] -> [street, city]").unwrap_err());
        assert!(matches!(inner, CfdError::Parse(_)));

        let (_, inner) = unwrap_at(parse_cfd(&s, 0, "CC -> street").unwrap_err());
        assert!(matches!(inner, CfdError::Parse(_)));
    }

    #[test]
    fn spans_locate_the_offending_line_and_atom() {
        let s = schema();
        let text = "# ok\n([CC=44, zip] -> [street])\n([CC, bogus] -> [city])\n";
        let err = parse_cfds(&s, text).unwrap_err();
        let span = err.span().expect("located");
        assert_eq!(span.line, 3);
        assert_eq!(span.col, 7); // `bogus` starts at byte 6 of the line
        assert_eq!(span.len, 5);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn parse_catalog_collects_all_errors_and_line_map() {
        let s = schema();
        let text =
            "([CC=44, zip] -> [street])\n[nope] -> [city]\n\n[AC] -> [oops]\n[zip] -> [city]\n";
        let cat = parse_catalog(&s, text);
        assert_eq!(cat.cfds.len(), 2);
        assert_eq!(cat.lines, vec![1, 5]);
        assert_eq!(cat.cfds[1].id, 1, "ids stay contiguous past bad lines");
        assert_eq!(cat.errors.len(), 2);
        assert_eq!(cat.errors[0].span().unwrap().line, 2);
        assert_eq!(cat.errors[1].span().unwrap().line, 4);
    }
}
