//! A small text format for CFDs.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! cfd   := '(' '[' atoms ']' '->' '[' atom ']' ')' | '[' atoms ']' '->' '[' atom ']'
//! atoms := atom (',' atom)*
//! atom  := NAME ('=' value)?          -- no value or '_' means wildcard
//! value := INT | "'" chars "'" | bare-chars
//! ```
//!
//! Examples (the paper's Fig. 1):
//!
//! ```text
//! ([CC=44, zip] -> [street])
//! ([CC=44, AC=131] -> [city=EDI])
//! ```
//!
//! Bare values that parse as `i64` become integers; quote them to force
//! strings (`[CC='44'] -> [street]`).

use crate::cfd::{Cfd, CfdId};
use crate::pattern::PatternValue;
use crate::CfdError;
use relation::{Schema, Value};

/// Parse a single CFD from text against `schema`, assigning `id`.
pub fn parse_cfd(schema: &Schema, id: CfdId, input: &str) -> Result<Cfd, CfdError> {
    let s = input.trim();
    let s = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(s)
        .trim();

    let (lhs_part, rhs_part) = s
        .split_once("->")
        .ok_or_else(|| CfdError::Parse(format!("missing `->` in `{input}`")))?;

    let lhs_atoms = parse_bracketed(lhs_part)?;
    let rhs_atoms = parse_bracketed(rhs_part)?;
    if rhs_atoms.len() != 1 {
        return Err(CfdError::Parse(format!(
            "RHS must have exactly one attribute, got {}",
            rhs_atoms.len()
        )));
    }

    let mut lhs_ids = Vec::with_capacity(lhs_atoms.len());
    let mut lhs_pat = Vec::with_capacity(lhs_atoms.len());
    for (name, pat) in &lhs_atoms {
        lhs_ids.push(
            schema
                .attr_id(name)
                .map_err(|_| CfdError::UnknownAttribute(name.clone()))?,
        );
        lhs_pat.push(pat.clone());
    }
    let (rhs_name, rhs_pat) = &rhs_atoms[0];
    let rhs_id = schema
        .attr_id(rhs_name)
        .map_err(|_| CfdError::UnknownAttribute(rhs_name.clone()))?;

    Cfd::new(id, schema, lhs_ids, rhs_id, lhs_pat, rhs_pat.clone())
}

/// Parse several CFDs, one per non-empty, non-`#`-comment line, assigning
/// contiguous ids starting at 0.
pub fn parse_cfds(schema: &Schema, input: &str) -> Result<Vec<Cfd>, CfdError> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let id = out.len() as CfdId;
        out.push(parse_cfd(schema, id, line)?);
    }
    Ok(out)
}

fn parse_bracketed(part: &str) -> Result<Vec<(String, PatternValue)>, CfdError> {
    let part = part.trim();
    let inner = part
        .strip_prefix('[')
        .and_then(|p| p.strip_suffix(']'))
        .ok_or_else(|| CfdError::Parse(format!("expected `[...]`, got `{part}`")))?;
    inner
        .split(',')
        .map(|atom| parse_atom(atom.trim()))
        .collect()
}

fn parse_atom(atom: &str) -> Result<(String, PatternValue), CfdError> {
    if atom.is_empty() {
        return Err(CfdError::Parse("empty atom".into()));
    }
    match atom.split_once('=') {
        None => Ok((atom.to_string(), PatternValue::Wildcard)),
        Some((name, raw)) => {
            let name = name.trim().to_string();
            let raw = raw.trim();
            let pat = if raw == "_" {
                PatternValue::Wildcard
            } else if let Some(quoted) = raw.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
                PatternValue::Const(Value::str(quoted))
            } else if let Ok(i) = raw.parse::<i64>() {
                PatternValue::Const(Value::int(i))
            } else {
                PatternValue::Const(Value::str(raw))
            };
            Ok((name, pat))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap()
    }

    #[test]
    fn parses_fig1_phi1() {
        let s = schema();
        let c = parse_cfd(&s, 0, "([CC=44, zip] -> [street])").unwrap();
        assert!(c.is_variable());
        assert_eq!(c.lhs, vec![1, 3]);
        assert_eq!(c.rhs, 4);
        assert_eq!(c.lhs_pattern[0], PatternValue::Const(Value::int(44)));
        assert!(c.lhs_pattern[1].is_wildcard());
        assert_eq!(c.display(&s).to_string(), "([CC=44, zip] -> [street])");
    }

    #[test]
    fn parses_fig1_phi2() {
        let s = schema();
        let c = parse_cfd(&s, 1, "([CC=44, AC=131] -> [city=EDI])").unwrap();
        assert!(c.is_constant());
        assert_eq!(c.rhs_pattern, PatternValue::Const(Value::str("EDI")));
    }

    #[test]
    fn quoted_values_force_strings_and_allow_spaces() {
        let s = schema();
        let c = parse_cfd(&s, 0, "[zip='EH4 8LE'] -> [street]").unwrap();
        assert_eq!(c.lhs_pattern[0], PatternValue::Const(Value::str("EH4 8LE")));
        let c2 = parse_cfd(&s, 0, "[CC='44'] -> [street]").unwrap();
        assert_eq!(c2.lhs_pattern[0], PatternValue::Const(Value::str("44")));
    }

    #[test]
    fn underscore_is_wildcard() {
        let s = schema();
        let c = parse_cfd(&s, 0, "[CC=_, zip=_] -> [street=_]").unwrap();
        assert!(c.is_fd());
    }

    #[test]
    fn multi_line_parse_with_comments() {
        let s = schema();
        let text = "\n# Fig. 1\n([CC=44, zip] -> [street])\n\n([CC=44, AC=131] -> [city=EDI])\n";
        let cfds = parse_cfds(&s, text).unwrap();
        assert_eq!(cfds.len(), 2);
        assert_eq!(cfds[0].id, 0);
        assert_eq!(cfds[1].id, 1);
    }

    #[test]
    fn errors_are_reported() {
        let s = schema();
        assert!(matches!(
            parse_cfd(&s, 0, "[CC=44] [street]"),
            Err(CfdError::Parse(_))
        ));
        assert!(matches!(
            parse_cfd(&s, 0, "[nope] -> [street]"),
            Err(CfdError::UnknownAttribute(_))
        ));
        assert!(matches!(
            parse_cfd(&s, 0, "[CC] -> [street, city]"),
            Err(CfdError::Parse(_))
        ));
        assert!(matches!(
            parse_cfd(&s, 0, "CC -> street"),
            Err(CfdError::Parse(_))
        ));
    }
}
