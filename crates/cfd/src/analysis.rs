//! Static analysis of a catalog Σ: satisfiability, implication, minimal
//! cover, and the mark-preserving prune plan (classical CFD reasoning,
//! Fan et al., applied ahead of plan compilation).
//!
//! # Decision procedures
//!
//! CFD satisfaction is preserved under sub-instances, so the classical
//! small-model results hold and bound every question here by a one- or
//! two-tuple search:
//!
//! * **Satisfiability.** Σ is satisfiable (some *nonempty* instance
//!   satisfies every rule) iff a *single* tuple satisfies every constant
//!   rule — variable rules are vacuous on singletons, and any tuple of a
//!   satisfying instance is itself a witness.
//! * **Implication.** A counterexample to `Σ′ ⊨ φ` needs one tuple when
//!   `φ` is constant and two when `φ` is variable: the violating tuple
//!   (pair) of any countermodel, taken alone, still satisfies Σ′.
//!
//! The search space is finite: per attribute it suffices to consider the
//! constants mentioned in the rules (intersected with the attribute's
//! domain) plus at most **two fresh values**. Any countermodel can be
//! collapsed onto that alphabet — patterns only test equality against
//! mentioned constants, and the two tuples of a counterexample only test
//! equality against each other — and when a finite domain leaves fewer
//! than two unmentioned values, no model has more either. Finite domains
//! are where CFD interaction bites: `(X=a → B=b1)` and `(X=a → B=b2)` are
//! jointly satisfiable over open domains (pick `X ≠ a`) but unsatisfiable
//! when `dom(X) = {a}`.
//!
//! The DFS carries a node budget; exhausting it yields
//! [`Sat::Unknown`] / [`Implication::Unknown`], never a wrong verdict —
//! `Implied` and `Unsatisfiable` are only reported on exhaustive search.
//!
//! # Minimal cover
//!
//! [`minimal_cover`] greedily removes rules implied by the rest —
//! vacuous rules, exact duplicates (modulo LHS atom order, via
//! [`NormalForm`]), pattern-tableau subsumption (`ψ ⊨ φ` read off the
//! atom maps), and, for small catalogs, the full model-based implication
//! test. The result carries a machine-checkable
//! [`CoverCertificate`]: each removed rule names the rules that imply it,
//! references are well-founded (each `implied_by` set only mentions kept
//! rules and rules removed *later*), so `Σ_min ≡ Σ` follows by induction
//! and [`CoverCertificate::verify`] re-derives every step.
//!
//! # Prune plan
//!
//! [`PrunePlan`] computes a *stricter*, syntactic relation than
//! implication: `ψ` **prunes** `φ` when the marks of `φ` are exactly the
//! marks of `ψ` filtered by `φ`'s constant LHS atoms (the *residual*),
//! on every instance:
//!
//! * both **variable**, same RHS, same LHS attribute *set*, `ψ`'s
//!   patterns pointwise generalize `φ`'s. Any `φ`-violating pair violates
//!   `ψ`; conversely a `ψ`-violating pair whose tuples match `φ`'s
//!   constants violates `φ` — the partners agree on all LHS attributes,
//!   so the residual filter carries from one tuple to the other. (A LHS
//!   *subset* would lose that carry-over, hence the same-set requirement.)
//! * both **constant**, same RHS attribute and constant, `ψ`'s constant
//!   atoms a subset of `φ`'s. Single-tuple semantics ignore wildcard
//!   atoms, so `marks(φ) = σ_{φ-atoms}(marks(ψ))` directly.
//!
//! A detector can then evaluate only the kept rules and reconstruct every
//! pruned rule's violation set by filtering its representative's marks —
//! see `core`'s `AnalysisMode::Prune`.

use crate::cfd::{Cfd, CfdId, NormalForm};
use crate::pattern::PatternValue;
use relation::{AttrId, Relation, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The value domain of one attribute, as far as the analysis is told.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Unbounded: fresh values outside the mentioned constants always
    /// exist.
    Open,
    /// Exactly these values exist.
    Finite(BTreeSet<Value>),
}

/// Per-attribute domains for the finite-domain-aware procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domains {
    doms: Vec<Domain>,
}

impl Domains {
    /// Every attribute unbounded — the classical open-world setting.
    pub fn open(schema: &Schema) -> Domains {
        Domains {
            doms: vec![Domain::Open; schema.arity()],
        }
    }

    /// Finite domains read off a relation: each attribute's domain is the
    /// set of values it takes in `rel` (the *active* domain). An empty
    /// relation yields all-empty domains, under which no tuple exists at
    /// all.
    pub fn observed(rel: &Relation) -> Domains {
        let arity = rel.schema().arity();
        let mut sets: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); arity];
        for t in rel.iter() {
            for (a, set) in sets.iter_mut().enumerate() {
                set.insert(t.get(a as AttrId).clone());
            }
        }
        Domains {
            doms: sets.into_iter().map(Domain::Finite).collect(),
        }
    }

    /// Override one attribute's domain with an explicit finite value set.
    pub fn set(&mut self, a: AttrId, values: impl IntoIterator<Item = Value>) {
        self.doms[a as usize] = Domain::Finite(values.into_iter().collect());
    }

    /// The domain of attribute `a`.
    pub fn get(&self, a: AttrId) -> &Domain {
        &self.doms[a as usize]
    }

    /// Some attribute whose domain is empty (then no tuple exists).
    fn empty_attr(&self) -> Option<AttrId> {
        self.doms
            .iter()
            .position(|d| match d {
                Domain::Open => false,
                Domain::Finite(s) => s.is_empty(),
            })
            .map(|i| i as AttrId)
    }
}

/// Knobs for the decision procedures.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// DFS node budget per decision-procedure call; exhaustion yields
    /// `Unknown`, never a wrong verdict.
    pub node_budget: u64,
    /// Run the full model-based implication test in [`minimal_cover`]
    /// when the catalog has at most this many rules (`0` = subsumption
    /// only). The test is quadratic in |Σ| with a search per rule, so it
    /// is gated to small catalogs.
    pub max_implication_rules: usize,
    /// Shrink unsatisfiable cores to a minimal conflicting subset.
    pub minimize_core: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            node_budget: 1 << 20,
            max_implication_rules: 32,
            minimize_core: true,
        }
    }
}

/// Verdict of the satisfiability check for Σ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sat {
    /// A single-tuple instance satisfying every rule.
    Satisfiable {
        /// The witness tuple (tid 0; attributes not mentioned by Σ carry
        /// an arbitrary domain value).
        witness: Tuple,
    },
    /// No nonempty instance satisfies Σ.
    Unsatisfiable {
        /// A conflicting set of rule ids, minimal when the budget
        /// sufficed to shrink it. Empty iff some attribute's domain is
        /// empty, so no tuple exists at all.
        core: Vec<CfdId>,
    },
    /// Node budget exhausted before a decision.
    Unknown,
}

/// Verdict of an implication check `Σ′ ⊨ φ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Implication {
    /// Every instance satisfying Σ′ satisfies φ.
    Implied,
    /// A counterexample: these tuples satisfy Σ′ and violate φ (one
    /// tuple for constant φ, two for variable φ).
    Independent {
        /// The countermodel.
        witness: Vec<Tuple>,
    },
    /// Node budget exhausted before a decision.
    Unknown,
}

/// Closed-form per-rule status, decided without search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleStatus {
    /// Nothing wrong with the rule in isolation.
    Ok,
    /// Untriggerable: no tuple over the domains matches the LHS (an LHS
    /// constant outside its domain, two conflicting constants on one
    /// attribute, or an empty attribute domain).
    Vacuous,
    /// Triggerable, but every tuple matching the LHS violates it: the
    /// RHS constant is outside the RHS attribute's domain.
    UnsatRhs,
}

/// Two constant rules with unifiable LHS patterns and different RHS
/// constants on the same attribute: any tuple matching both LHSs
/// violates one of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictPair {
    /// The lower rule id.
    pub a: CfdId,
    /// The higher rule id.
    pub b: CfdId,
    /// The contested RHS attribute.
    pub attr: AttrId,
}

/// Why [`minimal_cover`] dropped a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    /// Untriggerable over the domains (implied by the empty set).
    Vacuous,
    /// Equal [`NormalForm`] to an earlier rule.
    Duplicate,
    /// Pattern-tableau subsumption by a single rule.
    Subsumed,
    /// Full model-based implication by the remaining rules.
    Implied,
}

/// One rule removed by the cover, with the rules that imply it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedRule {
    /// The removed rule's id.
    pub id: CfdId,
    /// Rule ids whose conjunction implies it (empty for vacuous rules).
    pub implied_by: Vec<CfdId>,
    /// Which test removed it.
    pub reason: RemovalReason,
}

/// The machine-checkable equivalence certificate `Σ_min ≡ Σ` produced by
/// [`minimal_cover`]: references are well-founded (each `implied_by`
/// mentions only kept rules and rules removed later in [`Self::removed`]
/// order), so keeping [`Self::kept`] preserves every removed rule by
/// induction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverCertificate {
    /// Ids of the rules forming Σ_min, ascending.
    pub kept: Vec<CfdId>,
    /// The removed rules, in removal order.
    pub removed: Vec<RemovedRule>,
}

impl CoverCertificate {
    /// Ids removed, ascending.
    pub fn removed_ids(&self) -> Vec<CfdId> {
        let mut v: Vec<CfdId> = self.removed.iter().map(|r| r.id).collect();
        v.sort_unstable();
        v
    }

    /// Re-derive every step of the certificate: the kept/removed ids
    /// partition Σ, references are well-founded, and each removed rule is
    /// implied by its `implied_by` set (re-checked with the appropriate
    /// procedure). `Unknown` verdicts fail verification.
    pub fn verify(
        &self,
        schema: &Schema,
        cfds: &[Cfd],
        domains: &Domains,
        cfg: &AnalysisConfig,
    ) -> Result<(), String> {
        let mut seen: BTreeSet<CfdId> = self.kept.iter().copied().collect();
        for r in &self.removed {
            if !seen.insert(r.id) {
                return Err(format!("rule {} listed twice in the certificate", r.id));
            }
        }
        if seen.len() != cfds.len() || seen.iter().any(|&id| (id as usize) >= cfds.len()) {
            return Err("kept ∪ removed is not a partition of Σ".into());
        }
        let by_id = |id: CfdId| &cfds[id as usize];
        // Well-foundedness: implied_by ⊆ kept ∪ later-removed.
        let kept: BTreeSet<CfdId> = self.kept.iter().copied().collect();
        for (k, r) in self.removed.iter().enumerate() {
            for &d in &r.implied_by {
                let later = self.removed[k + 1..].iter().any(|s| s.id == d);
                if !kept.contains(&d) && !later {
                    return Err(format!(
                        "rule {}'s implied_by references {}, which is neither kept nor removed later",
                        r.id, d
                    ));
                }
            }
        }
        for r in &self.removed {
            let phi = by_id(r.id);
            match r.reason {
                RemovalReason::Vacuous => {
                    if rule_status(phi, domains) != RuleStatus::Vacuous {
                        return Err(format!("rule {} is not vacuous", r.id));
                    }
                }
                RemovalReason::Duplicate => {
                    let ok = r.implied_by.len() == 1
                        && by_id(r.implied_by[0]).normal_form() == phi.normal_form();
                    if !ok {
                        return Err(format!("rule {} is not a duplicate of its witness", r.id));
                    }
                }
                RemovalReason::Subsumed => {
                    let ok = r.implied_by.len() == 1 && subsumes(by_id(r.implied_by[0]), phi);
                    if !ok {
                        return Err(format!("rule {} is not subsumed by its witness", r.id));
                    }
                }
                RemovalReason::Implied => {
                    let sigma: Vec<Cfd> = r.implied_by.iter().map(|&d| by_id(d).clone()).collect();
                    match implies(schema, &sigma, phi, domains, cfg) {
                        Implication::Implied => {}
                        Implication::Independent { .. } => {
                            return Err(format!("rule {} is not implied by its witness set", r.id))
                        }
                        Implication::Unknown => {
                            return Err(format!(
                                "implication check for rule {} exhausted its budget",
                                r.id
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The mark-preserving prune plan: which rules a detector may skip, and
/// how to reconstruct their violation sets from a kept representative.
///
/// For every pruned rule `φ` (with `rep[φ] ≠ φ`):
/// `marks(φ) = { t ∈ marks(rep[φ]) : t matches residual[φ] }` on every
/// instance — see the module docs for the two cases and their proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunePlan {
    /// Ids of the kept rules (the maximal elements of the strict
    /// generality order), ascending.
    pub kept: Vec<CfdId>,
    /// Per rule: the kept representative (kept rules are their own).
    pub rep: Vec<CfdId>,
    /// Per rule: the residual filter — its constant LHS atoms. Empty for
    /// kept rules.
    pub residual: Vec<Vec<(AttrId, Value)>>,
}

impl PrunePlan {
    /// Compute the plan for a catalog. Purely syntactic — no domains, no
    /// search; `O(n²)` atom-map comparisons.
    pub fn compute(cfds: &[Cfd]) -> PrunePlan {
        let n = cfds.len();
        debug_assert!(
            cfds.iter().enumerate().all(|(i, c)| c.id as usize == i),
            "PrunePlan indexes by position: rule ids must be contiguous"
        );
        let folded: Vec<Option<BTreeMap<AttrId, PatternValue>>> =
            cfds.iter().map(fold_lhs).collect();
        let prunes = |i: usize, j: usize| -> bool {
            let (psi, phi) = (&cfds[i], &cfds[j]);
            if psi.rhs != phi.rhs || psi.rhs_pattern != phi.rhs_pattern {
                return false;
            }
            let (Some(pm), Some(fm)) = (&folded[i], &folded[j]) else {
                return false;
            };
            if psi.is_variable() {
                // Same LHS attribute set, pointwise generalization.
                pm.len() == fm.len()
                    && pm
                        .iter()
                        .all(|(a, p)| fm.get(a).is_some_and(|q| p.generalizes(q)))
            } else {
                // Constant atoms a subset of φ's (wildcards are vacuous
                // under single-tuple semantics).
                pm.iter()
                    .all(|(a, p)| p.is_wildcard() || fm.get(a) == Some(p))
            }
        };
        // φ is pruned iff some ψ is strictly above it: ψ prunes φ and
        // either φ does not prune ψ back (strictly more general) or the
        // two are equivalent and ψ has the smaller id.
        let mut kept = Vec::new();
        let mut pruned = vec![false; n];
        for j in 0..n {
            let dominated = (0..n)
                .any(|i| i != j && prunes(i, j) && (!prunes(j, i) || cfds[i].id < cfds[j].id));
            if dominated {
                pruned[j] = true;
            } else {
                kept.push(cfds[j].id);
            }
        }
        let mut rep: Vec<CfdId> = cfds.iter().map(|c| c.id).collect();
        let mut residual: Vec<Vec<(AttrId, Value)>> = vec![Vec::new(); n];
        for j in 0..n {
            if !pruned[j] {
                continue;
            }
            // Min-id kept generalizer; one exists by transitivity of the
            // prune relation along the finite strict order.
            let r = (0..n)
                .filter(|&i| !pruned[i] && prunes(i, j))
                .min_by_key(|&i| cfds[i].id)
                .expect("a pruned rule always has a kept generalizer");
            rep[j] = cfds[r].id;
            residual[j] = cfds[j].constant_atoms();
        }
        PrunePlan {
            kept,
            rep,
            residual,
        }
    }

    /// Is this rule pruned (reconstructed from a representative)?
    pub fn is_pruned(&self, id: CfdId) -> bool {
        self.rep[id as usize] != id
    }

    /// Number of pruned rules.
    pub fn n_pruned(&self) -> usize {
        self.rep.len() - self.kept.len()
    }

    /// Fraction of Σ pruned (`0.0` for an empty catalog).
    pub fn pruned_fraction(&self) -> f64 {
        if self.rep.is_empty() {
            0.0
        } else {
            self.n_pruned() as f64 / self.rep.len() as f64
        }
    }
}

/// Everything [`analyze`] learned about a catalog.
#[derive(Debug, Clone)]
pub struct CatalogAnalysis {
    /// Closed-form status per rule, indexed by rule id.
    pub per_rule: Vec<RuleStatus>,
    /// `(duplicate, first)` pairs of rules equal modulo LHS atom order.
    pub duplicates: Vec<(CfdId, CfdId)>,
    /// Constant-rule pairs forcing a violation on their joint scope.
    pub conflicts: Vec<ConflictPair>,
    /// Satisfiability of the conjunction of Σ over the domains.
    pub sat: Sat,
    /// The minimal cover with its equivalence certificate.
    pub cover: CoverCertificate,
    /// The mark-preserving prune plan.
    pub prune: PrunePlan,
}

/// Run the full static analysis of a catalog.
pub fn analyze(
    schema: &Schema,
    cfds: &[Cfd],
    domains: &Domains,
    cfg: &AnalysisConfig,
) -> CatalogAnalysis {
    let per_rule = cfds.iter().map(|c| rule_status(c, domains)).collect();
    let mut duplicates = Vec::new();
    let mut first: BTreeMap<NormalForm, CfdId> = BTreeMap::new();
    for c in cfds {
        match first.get(&c.normal_form()) {
            Some(&f) => duplicates.push((c.id, f)),
            None => {
                first.insert(c.normal_form(), c.id);
            }
        }
    }
    CatalogAnalysis {
        per_rule,
        duplicates,
        conflicts: conflict_pairs(cfds, domains),
        sat: satisfiable(schema, cfds, domains, cfg),
        cover: minimal_cover(schema, cfds, domains, cfg),
        prune: PrunePlan::compute(cfds),
    }
}

/// Closed-form status of one rule over the domains (no search).
pub fn rule_status(cfd: &Cfd, domains: &Domains) -> RuleStatus {
    let Some(folded) = fold_lhs(cfd) else {
        return RuleStatus::Vacuous; // conflicting constants on one attr
    };
    for (&a, p) in &folded {
        match (domains.get(a), p) {
            (Domain::Finite(s), _) if s.is_empty() => return RuleStatus::Vacuous,
            (Domain::Finite(s), PatternValue::Const(c)) if !s.contains(c) => {
                return RuleStatus::Vacuous
            }
            _ => {}
        }
    }
    if let Domain::Finite(s) = domains.get(cfd.rhs) {
        if s.is_empty() {
            return RuleStatus::Vacuous;
        }
        if let Some(c) = cfd.rhs_pattern.as_const() {
            if !s.contains(c) {
                return RuleStatus::UnsatRhs;
            }
        }
    }
    RuleStatus::Ok
}

/// A constant rule folded for the conflict scan: RHS attribute, RHS
/// constant, and its folded LHS pattern.
type FoldedConst<'a> = (AttrId, &'a Value, BTreeMap<AttrId, PatternValue>);

/// Constant-rule pairs with unifiable LHS patterns and different RHS
/// constants on the same attribute.
pub fn conflict_pairs(cfds: &[Cfd], domains: &Domains) -> Vec<ConflictPair> {
    let consts: Vec<Option<FoldedConst<'_>>> = cfds
        .iter()
        .map(|c| {
            if rule_status(c, domains) == RuleStatus::Vacuous {
                return None;
            }
            let folded = fold_lhs(c)?;
            c.rhs_pattern.as_const().map(|v| (c.rhs, v, folded))
        })
        .collect();
    let mut out = Vec::new();
    for i in 0..cfds.len() {
        let Some((bi, vi, mi)) = &consts[i] else {
            continue;
        };
        for j in i + 1..cfds.len() {
            let Some((bj, vj, mj)) = &consts[j] else {
                continue;
            };
            if bi != bj || vi == vj {
                continue;
            }
            // Unifiable: no attribute constrained to different constants.
            let unifiable = mi.iter().all(|(a, p)| match (p, mj.get(a)) {
                (PatternValue::Const(x), Some(PatternValue::Const(y))) => x == y,
                _ => true,
            });
            if unifiable {
                out.push(ConflictPair {
                    a: cfds[i].id,
                    b: cfds[j].id,
                    attr: *bi,
                });
            }
        }
    }
    out
}

/// Decide satisfiability of Σ over the domains.
pub fn satisfiable(schema: &Schema, cfds: &[Cfd], domains: &Domains, cfg: &AnalysisConfig) -> Sat {
    if domains.empty_attr().is_some() {
        // No tuple exists at all, so no nonempty instance does.
        return Sat::Unsatisfiable { core: Vec::new() };
    }
    let constants: Vec<&Cfd> = cfds.iter().filter(|c| c.is_constant()).collect();
    let mut engine = Engine::build(schema, domains, &constants, cfg.node_budget);
    match engine.find_one(&constants, None) {
        Outcome::Found(assign) => Sat::Satisfiable {
            witness: engine.render(0, &assign),
        },
        Outcome::Exhausted => {
            let mut core: Vec<CfdId> = constants.iter().map(|c| c.id).collect();
            if cfg.minimize_core {
                core = minimize_core(schema, cfds, domains, cfg, core);
            }
            Sat::Unsatisfiable { core }
        }
        Outcome::Budget => Sat::Unknown,
    }
}

/// Greedy deletion: drop any rule whose removal keeps the set
/// unsatisfiable. Minimal when every sub-search stays in budget.
fn minimize_core(
    schema: &Schema,
    cfds: &[Cfd],
    domains: &Domains,
    cfg: &AnalysisConfig,
    mut core: Vec<CfdId>,
) -> Vec<CfdId> {
    let mut i = 0;
    while i < core.len() {
        let trial: Vec<&Cfd> = core
            .iter()
            .filter(|&&id| id != core[i])
            .map(|&id| &cfds[id as usize])
            .collect();
        let mut engine = Engine::build(schema, domains, &trial, cfg.node_budget);
        match engine.find_one(&trial, None) {
            Outcome::Exhausted => {
                core.remove(i); // still unsat without it
            }
            Outcome::Found(_) => i += 1, // needed
            Outcome::Budget => break,    // keep the rest conservatively
        }
    }
    core
}

/// Decide `sigma ⊨ phi` over the domains (`phi` need not be in `sigma`;
/// if it is, callers should pass `Σ \ {φ}`).
pub fn implies(
    schema: &Schema,
    sigma: &[Cfd],
    phi: &Cfd,
    domains: &Domains,
    cfg: &AnalysisConfig,
) -> Implication {
    if subsumes_any(sigma, phi) {
        return Implication::Implied;
    }
    if rule_status(phi, domains) == RuleStatus::Vacuous || domains.empty_attr().is_some() {
        // φ cannot be violated (or no tuple exists): vacuously implied.
        return Implication::Implied;
    }
    let mut all: Vec<&Cfd> = sigma.iter().collect();
    all.push(phi);
    let mut engine = Engine::build(schema, domains, &all, cfg.node_budget);
    if phi.is_constant() {
        let constants: Vec<&Cfd> = sigma.iter().filter(|c| c.is_constant()).collect();
        let goal = engine.goal_violate_constant(phi);
        match engine.find_one(&constants, Some(&goal)) {
            Outcome::Found(assign) => Implication::Independent {
                witness: vec![engine.render(0, &assign)],
            },
            Outcome::Exhausted => Implication::Implied,
            Outcome::Budget => Implication::Unknown,
        }
    } else {
        let rules: Vec<&Cfd> = sigma.iter().collect();
        let goal = engine.goal_violate_variable(phi);
        match engine.find_pair(&rules, &goal) {
            Outcome::Found((at, au)) => Implication::Independent {
                witness: vec![engine.render(0, &at), engine.render(1, &au)],
            },
            Outcome::Exhausted => Implication::Implied,
            Outcome::Budget => Implication::Unknown,
        }
    }
}

/// Compute the minimal cover of Σ with its equivalence certificate.
pub fn minimal_cover(
    schema: &Schema,
    cfds: &[Cfd],
    domains: &Domains,
    cfg: &AnalysisConfig,
) -> CoverCertificate {
    let mut alive: Vec<bool> = vec![true; cfds.len()];
    let mut removed = Vec::new();
    // Pass 1: vacuous rules are implied by the empty set.
    for (i, c) in cfds.iter().enumerate() {
        if rule_status(c, domains) == RuleStatus::Vacuous {
            alive[i] = false;
            removed.push(RemovedRule {
                id: c.id,
                implied_by: Vec::new(),
                reason: RemovalReason::Vacuous,
            });
        }
    }
    // Pass 2: exact duplicates modulo LHS atom order, keeping the first.
    let mut first: BTreeMap<NormalForm, CfdId> = BTreeMap::new();
    for (i, c) in cfds.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        match first.get(&c.normal_form()) {
            Some(&f) => {
                alive[i] = false;
                removed.push(RemovedRule {
                    id: c.id,
                    implied_by: vec![f],
                    reason: RemovalReason::Duplicate,
                });
            }
            None => {
                first.insert(c.normal_form(), c.id);
            }
        }
    }
    // Pass 3: subsumption by a single live rule; then (gated) the full
    // model-based test against all other live rules.
    let full = cfds.len() <= cfg.max_implication_rules;
    for i in 0..cfds.len() {
        if !alive[i] {
            continue;
        }
        let phi = &cfds[i];
        let by_single = (0..cfds.len()).find(|&j| {
            j != i
                && alive[j]
                && subsumes(&cfds[j], phi)
                && (!subsumes(phi, &cfds[j]) || cfds[j].id < phi.id)
        });
        if let Some(j) = by_single {
            alive[i] = false;
            removed.push(RemovedRule {
                id: phi.id,
                implied_by: vec![cfds[j].id],
                reason: RemovalReason::Subsumed,
            });
            continue;
        }
        if full {
            let rest: Vec<Cfd> = (0..cfds.len())
                .filter(|&j| j != i && alive[j])
                .map(|j| cfds[j].clone())
                .collect();
            if implies(schema, &rest, phi, domains, cfg) == Implication::Implied {
                alive[i] = false;
                removed.push(RemovedRule {
                    id: phi.id,
                    implied_by: rest.iter().map(|c| c.id).collect(),
                    reason: RemovalReason::Implied,
                });
            }
        }
    }
    let kept = cfds
        .iter()
        .enumerate()
        .filter(|&(i, _)| alive[i])
        .map(|(_, c)| c.id)
        .collect();
    CoverCertificate { kept, removed }
}

/// Syntactic single-rule implication `ψ ⊨ φ`, read off the atom maps.
/// Sound over any domains (the argument never consults them); complete
/// only relative to single-rule, open-domain reasoning.
pub fn subsumes(psi: &Cfd, phi: &Cfd) -> bool {
    let Some(fm) = fold_lhs(phi) else {
        return true; // φ untriggerable: implied by anything
    };
    let Some(pm) = fold_lhs(psi) else {
        return false; // ψ untriggerable: satisfied everywhere, implies nothing more
    };
    if psi.rhs != phi.rhs {
        return false;
    }
    if psi.is_variable() {
        // A singleton violates constant φ but never variable ψ.
        phi.is_variable()
            && pm
                .iter()
                .all(|(a, p)| fm.get(a).is_some_and(|q| p.generalizes(q)))
    } else {
        // ψ constrains single tuples through its constant atoms only.
        let atoms_ok = pm
            .iter()
            .all(|(a, p)| p.is_wildcard() || fm.get(a) == Some(p));
        let rhs_ok = phi.is_variable() || phi.rhs_pattern == psi.rhs_pattern;
        atoms_ok && rhs_ok
    }
}

fn subsumes_any(sigma: &[Cfd], phi: &Cfd) -> bool {
    sigma.iter().any(|psi| subsumes(psi, phi))
}

/// Fold a rule's LHS atoms into one pattern per attribute
/// (`_ ∧ c = c`); `None` when two different constants meet on one
/// attribute (the LHS is then unsatisfiable).
fn fold_lhs(cfd: &Cfd) -> Option<BTreeMap<AttrId, PatternValue>> {
    let mut map: BTreeMap<AttrId, PatternValue> = BTreeMap::new();
    for (&a, p) in cfd.lhs.iter().zip(&cfd.lhs_pattern) {
        match (map.get(&a), p) {
            (None, _) => {
                map.insert(a, p.clone());
            }
            (Some(PatternValue::Wildcard), _) => {
                map.insert(a, p.clone());
            }
            (Some(PatternValue::Const(_)), PatternValue::Wildcard) => {}
            (Some(PatternValue::Const(x)), PatternValue::Const(y)) => {
                if x != y {
                    return None;
                }
            }
        }
    }
    Some(map)
}

// ---------------------------------------------------------------------
// The bounded-model engine.
// ---------------------------------------------------------------------

/// A compiled LHS/RHS atom against one slot's candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomPat {
    /// Wildcard: matches every candidate.
    Any,
    /// This candidate index exactly.
    Eq(usize),
    /// A constant outside the attribute's domain: matches nothing.
    Never,
}

impl AtomPat {
    fn matches(self, cand: usize) -> bool {
        match self {
            AtomPat::Any => true,
            AtomPat::Eq(i) => cand == i,
            AtomPat::Never => false,
        }
    }
}

/// A rule compiled onto the engine's slots.
#[derive(Debug, Clone)]
struct CRule {
    /// `(slot, pat)` per folded LHS atom (wildcards included — variable
    /// semantics need the full attribute set), ascending by slot.
    lhs: Vec<(usize, AtomPat)>,
    rhs_slot: usize,
    /// `Eq`/`Never` for constant rules, `Any` for variable rules.
    rhs: AtomPat,
    /// Highest slot this rule reads: checkable once slots `0..=due` are
    /// assigned.
    due: usize,
    /// `None` for a rule with a conflicting LHS fold (never triggers).
    live: bool,
}

/// Per-slot branching constraint derived from the implication goal.
#[derive(Debug, Clone, Copy)]
enum Goal1 {
    Free,
    Only(usize),
    Not(usize),
}

/// Per-slot pair constraint for the variable-φ goal.
#[derive(Debug, Clone, Copy)]
enum Goal2 {
    Free,
    /// Both tuples take the same candidate, matching this atom
    /// (φ's LHS slots).
    AgreeMatching(AtomPat),
    /// The two tuples differ (φ's RHS slot).
    Differ,
}

enum Outcome<T> {
    Found(T),
    Exhausted,
    Budget,
}

struct Engine<'a> {
    schema: &'a Schema,
    domains: &'a Domains,
    /// Mentioned attributes, ascending.
    slots: Vec<AttrId>,
    /// Candidate values per slot: `consts` then `fresh` synthesized ones.
    consts: Vec<Vec<Value>>,
    fresh: Vec<Vec<Value>>,
    budget: u64,
}

impl<'a> Engine<'a> {
    fn build(schema: &'a Schema, domains: &'a Domains, rules: &[&Cfd], budget: u64) -> Self {
        let mut mentioned: BTreeMap<AttrId, BTreeSet<Value>> = BTreeMap::new();
        for c in rules {
            for (&a, p) in c.lhs.iter().zip(&c.lhs_pattern) {
                let e = mentioned.entry(a).or_default();
                if let Some(v) = p.as_const() {
                    e.insert(v.clone());
                }
            }
            let e = mentioned.entry(c.rhs).or_default();
            if let Some(v) = c.rhs_pattern.as_const() {
                e.insert(v.clone());
            }
        }
        let slots: Vec<AttrId> = mentioned.keys().copied().collect();
        let mut consts = Vec::with_capacity(slots.len());
        let mut fresh = Vec::with_capacity(slots.len());
        for (&a, vals) in &mentioned {
            match domains.get(a) {
                Domain::Open => {
                    let cs: Vec<Value> = vals.iter().cloned().collect();
                    fresh.push(synthesize_fresh(&cs, 2));
                    consts.push(cs);
                }
                Domain::Finite(dom) => {
                    let cs: Vec<Value> = vals.intersection(dom).cloned().collect();
                    let fs: Vec<Value> = dom.difference(vals).take(2).cloned().collect();
                    consts.push(cs);
                    fresh.push(fs);
                }
            }
        }
        Engine {
            schema,
            domains,
            slots,
            consts,
            fresh,
            budget,
        }
    }

    fn n_cands(&self, slot: usize) -> usize {
        self.consts[slot].len() + self.fresh[slot].len()
    }

    fn slot_of(&self, a: AttrId) -> usize {
        self.slots.binary_search(&a).expect("mentioned attribute")
    }

    fn atom_pat(&self, a: AttrId, p: &PatternValue) -> AtomPat {
        match p {
            PatternValue::Wildcard => AtomPat::Any,
            PatternValue::Const(v) => {
                let slot = self.slot_of(a);
                match self.consts[slot].iter().position(|c| c == v) {
                    Some(i) => AtomPat::Eq(i),
                    None => AtomPat::Never, // outside a finite domain
                }
            }
        }
    }

    fn compile(&self, c: &Cfd) -> CRule {
        let rhs_slot = self.slot_of(c.rhs);
        let (lhs, live) = match fold_lhs(c) {
            Some(folded) => {
                let lhs: Vec<(usize, AtomPat)> = folded
                    .iter()
                    .map(|(&a, p)| (self.slot_of(a), self.atom_pat(a, p)))
                    .collect();
                (lhs, true)
            }
            None => (Vec::new(), false),
        };
        let due = lhs
            .iter()
            .map(|&(s, _)| s)
            .chain(std::iter::once(rhs_slot))
            .max()
            .unwrap_or(0);
        CRule {
            lhs,
            rhs_slot,
            rhs: match &c.rhs_pattern {
                PatternValue::Wildcard => AtomPat::Any,
                p => self.atom_pat(c.rhs, p),
            },
            due,
            live,
        }
    }

    /// Group compiled rules by the slot at which they become checkable.
    fn due_lists(&self, rules: &[CRule]) -> Vec<Vec<usize>> {
        let mut due = vec![Vec::new(); self.slots.len().max(1)];
        for (i, r) in rules.iter().enumerate() {
            if r.live {
                due[r.due].push(i);
            }
        }
        due
    }

    /// One-tuple DFS: find a candidate assignment satisfying every
    /// (constant) rule in `rules`, subject to the per-slot goal.
    fn find_one(&mut self, rules: &[&Cfd], goal: Option<&[Goal1]>) -> Outcome<Vec<usize>> {
        if self.slots.is_empty() {
            return Outcome::Found(Vec::new()); // nothing constrains anything
        }
        let compiled: Vec<CRule> = rules.iter().map(|c| self.compile(c)).collect();
        let due = self.due_lists(&compiled);
        let mut assign = vec![0usize; self.slots.len()];
        self.dfs_one(0, &compiled, &due, goal, &mut assign)
    }

    fn dfs_one(
        &mut self,
        slot: usize,
        rules: &[CRule],
        due: &[Vec<usize>],
        goal: Option<&[Goal1]>,
        assign: &mut Vec<usize>,
    ) -> Outcome<Vec<usize>> {
        if slot == self.slots.len() {
            return Outcome::Found(assign.clone());
        }
        for cand in 0..self.n_cands(slot) {
            if self.budget == 0 {
                return Outcome::Budget;
            }
            self.budget -= 1;
            match goal.map(|g| g[slot]) {
                Some(Goal1::Only(i)) if cand != i => continue,
                Some(Goal1::Not(i)) if cand == i => continue,
                _ => {}
            }
            assign[slot] = cand;
            let ok = due[slot].iter().all(|&r| {
                let rule = &rules[r];
                let lhs_match = rule.lhs.iter().all(|&(s, p)| p.matches(assign[s]));
                !lhs_match || rule.rhs.matches(assign[rule.rhs_slot])
            });
            if !ok {
                continue;
            }
            match self.dfs_one(slot + 1, rules, due, goal, assign) {
                Outcome::Exhausted => {}
                done => return done,
            }
        }
        Outcome::Exhausted
    }

    /// Two-tuple DFS: find a pair satisfying every rule in `rules`
    /// (constant rules tuple-wise, variable rules pair-wise) while
    /// meeting the per-slot pair goal.
    fn find_pair(&mut self, rules: &[&Cfd], goal: &[Goal2]) -> Outcome<(Vec<usize>, Vec<usize>)> {
        if self.slots.is_empty() {
            return Outcome::Exhausted; // a variable goal needs a differing slot
        }
        let compiled: Vec<(CRule, bool)> = rules
            .iter()
            .map(|c| (self.compile(c), c.is_variable()))
            .collect();
        let plain: Vec<CRule> = compiled.iter().map(|(r, _)| r.clone()).collect();
        let due = self.due_lists(&plain);
        let mut at = vec![0usize; self.slots.len()];
        let mut au = vec![0usize; self.slots.len()];
        self.dfs_pair(0, &compiled, &due, goal, &mut at, &mut au)
    }

    fn dfs_pair(
        &mut self,
        slot: usize,
        rules: &[(CRule, bool)],
        due: &[Vec<usize>],
        goal: &[Goal2],
        at: &mut Vec<usize>,
        au: &mut Vec<usize>,
    ) -> Outcome<(Vec<usize>, Vec<usize>)> {
        if slot == self.slots.len() {
            return Outcome::Found((at.clone(), au.clone()));
        }
        let n = self.n_cands(slot);
        for ct in 0..n {
            for cu in 0..n {
                if self.budget == 0 {
                    return Outcome::Budget;
                }
                self.budget -= 1;
                match goal[slot] {
                    Goal2::AgreeMatching(p) => {
                        if ct != cu || !p.matches(ct) {
                            continue;
                        }
                    }
                    Goal2::Differ => {
                        if ct == cu {
                            continue;
                        }
                    }
                    Goal2::Free => {}
                }
                at[slot] = ct;
                au[slot] = cu;
                let ok = due[slot].iter().all(|&r| {
                    let (rule, variable) = &rules[r];
                    if *variable {
                        // Violated iff both match, agree on the LHS, and
                        // differ on the RHS.
                        let both = rule
                            .lhs
                            .iter()
                            .all(|&(s, p)| p.matches(at[s]) && p.matches(au[s]) && at[s] == au[s]);
                        !(both && at[rule.rhs_slot] != au[rule.rhs_slot])
                    } else {
                        let sat_one = |t: &[usize]| {
                            let lhs_match = rule.lhs.iter().all(|&(s, p)| p.matches(t[s]));
                            !lhs_match || rule.rhs.matches(t[rule.rhs_slot])
                        };
                        sat_one(at) && sat_one(au)
                    }
                });
                if !ok {
                    continue;
                }
                match self.dfs_pair(slot + 1, rules, due, goal, at, au) {
                    Outcome::Exhausted => {}
                    done => return done,
                }
            }
        }
        Outcome::Exhausted
    }

    /// Per-slot branching constraints making a single tuple violate
    /// constant `phi`: match its LHS, avoid its RHS constant.
    fn goal_violate_constant(&self, phi: &Cfd) -> Vec<Goal1> {
        let mut goal = vec![Goal1::Free; self.slots.len()];
        if let Some(folded) = fold_lhs(phi) {
            for (&a, p) in &folded {
                if let AtomPat::Eq(i) = self.atom_pat(a, p) {
                    goal[self.slot_of(a)] = Goal1::Only(i);
                }
                // `Never` is handled by the caller (φ vacuous ⇒ implied);
                // wildcards impose nothing.
            }
        }
        if let Some(v) = phi.rhs_pattern.as_const() {
            let slot = self.slot_of(phi.rhs);
            if let Some(i) = self.consts[slot].iter().position(|c| c == v) {
                goal[slot] = Goal1::Not(i);
            }
            // RHS constant outside the domain: every candidate differs.
        }
        goal
    }

    /// Per-slot pair constraints making two tuples violate variable
    /// `phi`: agree (matching) on its LHS, differ on its RHS.
    fn goal_violate_variable(&self, phi: &Cfd) -> Vec<Goal2> {
        let mut goal = vec![Goal2::Free; self.slots.len()];
        if let Some(folded) = fold_lhs(phi) {
            for (&a, p) in &folded {
                goal[self.slot_of(a)] = Goal2::AgreeMatching(self.atom_pat(a, p));
            }
        }
        goal[self.slot_of(phi.rhs)] = Goal2::Differ;
        goal
    }

    /// Materialize a candidate assignment as a full tuple; attributes Σ
    /// never mentions get an arbitrary domain value.
    fn render(&self, tid: relation::Tid, assign: &[usize]) -> Tuple {
        let mut values = Vec::with_capacity(self.schema.arity());
        for a in 0..self.schema.arity() as AttrId {
            match self.slots.binary_search(&a) {
                Ok(slot) => {
                    let cand = assign[slot];
                    let nc = self.consts[slot].len();
                    values.push(if cand < nc {
                        self.consts[slot][cand].clone()
                    } else {
                        self.fresh[slot][cand - nc].clone()
                    });
                }
                Err(_) => values.push(match self.domains.get(a) {
                    Domain::Open => Value::Null,
                    Domain::Finite(s) => s
                        .iter()
                        .next()
                        .cloned()
                        .expect("empty domains handled upfront"),
                }),
            }
        }
        Tuple::new(tid, values)
    }
}

/// Synthesize `n` values distinct from every value in `avoid` (open
/// domains only, where such values always exist).
fn synthesize_fresh(avoid: &[Value], n: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(n);
    let mut next = avoid
        .iter()
        .filter_map(|v| match v {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .max()
        .map_or(0, |m| m + 1);
    while out.len() < n {
        let v = Value::int(next);
        next += 1;
        if !avoid.contains(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "x", "y", "z"], "id").unwrap()
    }

    fn cfd(
        id: CfdId,
        s: &Schema,
        lhs: &[(&str, Option<Value>)],
        rhs: (&str, Option<Value>),
    ) -> Cfd {
        Cfd::from_names(id, s, lhs, rhs).unwrap()
    }

    fn satisfies(cfds: &[Cfd], tuples: &[Tuple]) -> bool {
        cfds.iter().all(|c| {
            if c.is_constant() {
                tuples.iter().all(|t| !c.constant_violation(t))
            } else {
                tuples.iter().all(|t| {
                    tuples
                        .iter()
                        .filter(|u| u.tid != t.tid)
                        .all(|u| !c.pair_violation(t, u))
                })
            }
        })
    }

    #[test]
    fn open_domains_dodge_a_constant_conflict() {
        let s = schema();
        let cfds = vec![
            cfd(
                0,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(10))),
            ),
            cfd(
                1,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(20))),
            ),
        ];
        let cfg = AnalysisConfig::default();
        match satisfiable(&s, &cfds, &Domains::open(&s), &cfg) {
            Sat::Satisfiable { witness } => {
                assert!(satisfies(&cfds, std::slice::from_ref(&witness)));
                assert_ne!(witness.get(1), &Value::int(1), "witness must dodge x=1");
            }
            other => panic!("expected satisfiable, got {other:?}"),
        }
    }

    #[test]
    fn finite_domain_makes_the_conflict_unsat_with_minimal_core() {
        let s = schema();
        let cfds = vec![
            cfd(0, &s, &[("y", None)], ("z", None)), // irrelevant FD
            cfd(
                1,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(10))),
            ),
            cfd(
                2,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(20))),
            ),
        ];
        let mut doms = Domains::open(&s);
        doms.set(1, [Value::int(1)]); // dom(x) = {1}: every tuple has x=1
        doms.set(2, [Value::int(10), Value::int(20)]);
        let cfg = AnalysisConfig::default();
        match satisfiable(&s, &cfds, &doms, &cfg) {
            Sat::Unsatisfiable { core } => assert_eq!(core, vec![1, 2]),
            other => panic!("expected unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn fd_implies_its_patterned_refinement_but_not_vice_versa() {
        let s = schema();
        let fd = cfd(0, &s, &[("x", None)], ("y", None));
        let refined = cfd(1, &s, &[("x", Some(Value::int(1)))], ("y", None));
        let doms = Domains::open(&s);
        let cfg = AnalysisConfig::default();
        assert_eq!(
            implies(&s, std::slice::from_ref(&fd), &refined, &doms, &cfg),
            Implication::Implied
        );
        match implies(&s, std::slice::from_ref(&refined), &fd, &doms, &cfg) {
            Implication::Independent { witness } => {
                assert_eq!(witness.len(), 2);
                assert!(satisfies(std::slice::from_ref(&refined), &witness));
                assert!(fd.pair_violation(&witness[0], &witness[1]));
            }
            other => panic!("expected independent, got {other:?}"),
        }
    }

    #[test]
    fn constant_rule_implies_the_matching_variable_rule() {
        let s = schema();
        let konst = cfd(
            0,
            &s,
            &[("x", Some(Value::int(1)))],
            ("y", Some(Value::int(5))),
        );
        let var = cfd(1, &s, &[("x", Some(Value::int(1)))], ("y", None));
        assert!(subsumes(&konst, &var));
        assert!(!subsumes(&var, &konst));
        let cfg = AnalysisConfig::default();
        let doms = Domains::open(&s);
        assert_eq!(
            implies(&s, std::slice::from_ref(&konst), &var, &doms, &cfg),
            Implication::Implied
        );
    }

    #[test]
    fn transitivity_shows_up_only_in_the_model_based_check() {
        // x→y and y→z imply x→z, which no single rule subsumes.
        let s = schema();
        let cfds = vec![
            cfd(0, &s, &[("x", None)], ("y", None)),
            cfd(1, &s, &[("y", None)], ("z", None)),
        ];
        let phi = cfd(2, &s, &[("x", None)], ("z", None));
        assert!(!subsumes_any(&cfds, &phi));
        let cfg = AnalysisConfig::default();
        assert_eq!(
            implies(&s, &cfds, &phi, &Domains::open(&s), &cfg),
            Implication::Implied
        );
    }

    #[test]
    fn cover_removes_duplicates_and_refinements_and_verifies() {
        let s = schema();
        let cfds = vec![
            cfd(0, &s, &[("x", None), ("y", None)], ("z", None)),
            cfd(1, &s, &[("y", None), ("x", None)], ("z", None)), // dup mod order
            cfd(
                2,
                &s,
                &[("x", Some(Value::int(7))), ("y", None)],
                ("z", None),
            ), // refinement
            cfd(
                3,
                &s,
                &[("y", Some(Value::int(3)))],
                ("z", Some(Value::int(4))),
            ),
        ];
        let doms = Domains::open(&s);
        let cfg = AnalysisConfig::default();
        let cover = minimal_cover(&s, &cfds, &doms, &cfg);
        assert_eq!(cover.kept, vec![0, 3]);
        assert_eq!(cover.removed_ids(), vec![1, 2]);
        cover.verify(&s, &cfds, &doms, &cfg).unwrap();
    }

    #[test]
    fn prune_plan_reps_and_residuals() {
        let s = schema();
        let cfds = vec![
            cfd(0, &s, &[("x", None), ("y", None)], ("z", None)),
            // Same LHS set, patterned refinement: pruned under 0.
            cfd(
                1,
                &s,
                &[("x", Some(Value::int(7))), ("y", None)],
                ("z", None),
            ),
            // LHS *subset* of 0: implied, but NOT mark-preserving ⇒ kept.
            cfd(2, &s, &[("x", None)], ("z", None)),
            // Constant pair: 4 refines 3.
            cfd(
                3,
                &s,
                &[("x", None), ("y", Some(Value::int(2)))],
                ("z", Some(Value::int(9))),
            ),
            cfd(
                4,
                &s,
                &[("x", Some(Value::int(5))), ("y", Some(Value::int(2)))],
                ("z", Some(Value::int(9))),
            ),
            // Exact duplicate of 0 modulo LHS order.
            cfd(5, &s, &[("y", None), ("x", None)], ("z", None)),
        ];
        let plan = PrunePlan::compute(&cfds);
        assert_eq!(plan.kept, vec![0, 2, 3]);
        assert_eq!(plan.rep, vec![0, 0, 2, 3, 3, 0]);
        assert!(plan.residual[1] == vec![(1, Value::int(7))]);
        assert_eq!(
            plan.residual[4],
            vec![(1, Value::int(5)), (2, Value::int(2))]
        );
        assert!(plan.residual[5].is_empty());
        assert_eq!(plan.n_pruned(), 3);
        assert!((plan.pruned_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicts_and_rule_status_diagnostics() {
        let s = schema();
        let cfds = vec![
            cfd(
                0,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(10))),
            ),
            cfd(
                1,
                &s,
                &[("z", Some(Value::int(3)))],
                ("y", Some(Value::int(20))),
            ),
            cfd(
                2,
                &s,
                &[("x", Some(Value::int(2)))],
                ("y", Some(Value::int(10))),
            ),
        ];
        let doms = Domains::open(&s);
        let pairs = conflict_pairs(&cfds, &doms);
        // 0↔1 unify (disjoint LHS attrs) and disagree on y; 0↔2 conflict
        // on x=1 vs x=2 so never co-fire; 1↔2 unify and disagree.
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
        assert_eq!((pairs[1].a, pairs[1].b), (1, 2));

        let mut doms = Domains::open(&s);
        doms.set(1, [Value::int(5)]); // x can only be 5
        assert_eq!(rule_status(&cfds[0], &doms), RuleStatus::Vacuous);
        doms.set(2, [Value::int(10)]); // y can only be 10
        assert_eq!(rule_status(&cfds[1], &doms), RuleStatus::UnsatRhs);
    }

    #[test]
    fn analyze_ties_it_together() {
        let s = schema();
        let cfds = vec![
            cfd(0, &s, &[("x", None)], ("y", None)),
            cfd(1, &s, &[("x", None)], ("y", None)), // duplicate
            cfd(2, &s, &[("x", Some(Value::int(1)))], ("y", None)), // refinement
        ];
        let doms = Domains::open(&s);
        let cfg = AnalysisConfig::default();
        let a = analyze(&s, &cfds, &doms, &cfg);
        assert_eq!(a.per_rule, vec![RuleStatus::Ok; 3]);
        assert_eq!(a.duplicates, vec![(1, 0)]);
        assert!(a.conflicts.is_empty());
        assert!(matches!(a.sat, Sat::Satisfiable { .. }));
        assert_eq!(a.cover.kept, vec![0]);
        a.cover.verify(&s, &cfds, &doms, &cfg).unwrap();
        assert_eq!(a.prune.kept, vec![0]);
        assert_eq!(a.prune.rep, vec![0, 0, 0]);
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_wrong() {
        let s = schema();
        let cfds = vec![
            cfd(
                0,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(10))),
            ),
            cfd(
                1,
                &s,
                &[("x", Some(Value::int(1)))],
                ("y", Some(Value::int(20))),
            ),
        ];
        let cfg = AnalysisConfig {
            node_budget: 1,
            ..AnalysisConfig::default()
        };
        assert_eq!(
            satisfiable(&s, &cfds, &Domains::open(&s), &cfg),
            Sat::Unknown
        );
    }

    #[test]
    fn observed_domains_come_from_the_relation() {
        let s = schema();
        let mut rel = Relation::new(Arc::clone(&s));
        rel.insert(Tuple::new(
            1,
            vec![Value::int(1), Value::int(7), Value::str("a"), Value::Null],
        ))
        .unwrap();
        rel.insert(Tuple::new(
            2,
            vec![Value::int(2), Value::int(8), Value::str("a"), Value::Null],
        ))
        .unwrap();
        let doms = Domains::observed(&rel);
        assert_eq!(
            doms.get(1),
            &Domain::Finite([Value::int(7), Value::int(8)].into_iter().collect())
        );
        assert_eq!(
            doms.get(2),
            &Domain::Finite([Value::str("a")].into_iter().collect())
        );
    }
}
