//! SQL generation for centralized CFD violation detection.
//!
//! §2.3: *"When D is a centralized database, two SQL queries suffice to
//! find V(Σ, D), no matter how many CFDs are in Σ. The SQL queries can be
//! automatically generated \[9]."* Reference \[9] (Fan, Geerts, Jia,
//! Kementsietsidis — TODS 33(2), 2008) detects violations of a CFD
//! `(X → B, T_p)` with
//!
//! * `Q_C` — the *constant* query: single tuples whose `X` matches a
//!   tableau row with a constant RHS but whose `B` differs, and
//! * `Q_V` — the *variable* query: `GROUP BY X` over pattern-matching
//!   tuples, keeping groups with more than one distinct `B`.
//!
//! This module generates those queries as SQL text (for running against an
//! external RDBMS) for any normalized rule set. The companion module
//! [`crate::algebra`] executes the equivalent plans on an in-memory
//! [`relation::Relation`], giving the repository a second, independent
//! oracle (cross-checked against [`crate::naive`] in the tests).

use crate::cfd::Cfd;
use crate::pattern::PatternValue;
use relation::{Schema, Value};

/// Quote an identifier for SQL.
fn ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Render a value as a SQL literal.
fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// The `WHERE` conjunction selecting tuples matching `t_p[X]` (constant
/// atoms only — wildcards match everything).
fn pattern_where(schema: &Schema, cfd: &Cfd, alias: &str) -> String {
    let mut conds: Vec<String> = cfd
        .lhs
        .iter()
        .zip(&cfd.lhs_pattern)
        .filter_map(|(&a, p)| {
            p.as_const()
                .map(|v| format!("{alias}.{} = {}", ident(schema.attr_name(a)), literal(v)))
        })
        .collect();
    if conds.is_empty() {
        conds.push("1 = 1".to_string());
    }
    conds.join(" AND ")
}

/// The constant query `Q_C` for a constant CFD: every tuple matching the
/// LHS pattern whose RHS attribute differs from the RHS constant.
/// Returns `None` for variable CFDs.
pub fn constant_query(schema: &Schema, cfd: &Cfd) -> Option<String> {
    let b = match &cfd.rhs_pattern {
        PatternValue::Const(v) => v,
        PatternValue::Wildcard => return None,
    };
    let table = ident(schema.name());
    let key = ident(schema.attr_name(schema.key()));
    let wher = pattern_where(schema, cfd, "t");
    Some(format!(
        "SELECT t.{key} FROM {table} t WHERE {wher} AND (t.{b_attr} <> {b_lit} OR t.{b_attr} IS NULL)",
        b_attr = ident(schema.attr_name(cfd.rhs)),
        b_lit = literal(b),
    ))
}

/// The variable query `Q_V` for a variable CFD: tuples in pattern-matching
/// `X` groups holding more than one distinct `B` value. Returns `None`
/// for constant CFDs.
pub fn variable_query(schema: &Schema, cfd: &Cfd) -> Option<String> {
    if cfd.is_constant() {
        return None;
    }
    let table = ident(schema.name());
    let key = ident(schema.attr_name(schema.key()));
    let xs: Vec<String> = cfd
        .lhs
        .iter()
        .map(|&a| ident(schema.attr_name(a)))
        .collect();
    let join_on: Vec<String> = xs.iter().map(|x| format!("t.{x} = g.{x}")).collect();
    let wher = pattern_where(schema, cfd, "t");
    let b = ident(schema.attr_name(cfd.rhs));
    let x_list = xs.join(", ");
    Some(format!(
        "SELECT t.{key} FROM {table} t JOIN (\
         SELECT {x_list} FROM {table} t WHERE {wher} \
         GROUP BY {x_list} HAVING COUNT(DISTINCT {b}) > 1\
         ) g ON {join} WHERE {wher}",
        join = join_on.join(" AND "),
    ))
}

/// The "two queries" of §2.3 for a whole rule set: one `UNION ALL` of all
/// constant queries, one of all variable queries. Either may be `None`
/// when the rule set has no CFDs of that kind.
pub fn two_queries(schema: &Schema, cfds: &[Cfd]) -> (Option<String>, Option<String>) {
    let consts: Vec<String> = cfds
        .iter()
        .filter_map(|c| constant_query(schema, c))
        .collect();
    let vars: Vec<String> = cfds
        .iter()
        .filter_map(|c| variable_query(schema, c))
        .collect();
    let join = |qs: Vec<String>| {
        if qs.is_empty() {
            None
        } else {
            Some(qs.join("\nUNION ALL\n"))
        }
    };
    (join(consts), join(vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap()
    }

    fn phi1(s: &Schema) -> Cfd {
        Cfd::from_names(
            0,
            s,
            &[("CC", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap()
    }

    fn phi2(s: &Schema) -> Cfd {
        Cfd::from_names(
            1,
            s,
            &[("CC", Some(Value::int(44))), ("AC", Some(Value::int(131)))],
            ("city", Some(Value::str("EDI"))),
        )
        .unwrap()
    }

    #[test]
    fn constant_query_shape() {
        let s = schema();
        let q = constant_query(&s, &phi2(&s)).unwrap();
        assert!(q.contains("\"CC\" = 44"));
        assert!(q.contains("\"AC\" = 131"));
        assert!(q.contains("<> 'EDI'"));
        assert!(q.starts_with("SELECT t.\"id\""));
        assert!(constant_query(&s, &phi1(&s)).is_none());
    }

    #[test]
    fn variable_query_shape() {
        let s = schema();
        let q = variable_query(&s, &phi1(&s)).unwrap();
        assert!(q.contains("GROUP BY \"CC\", \"zip\""));
        assert!(q.contains("HAVING COUNT(DISTINCT \"street\") > 1"));
        assert!(q.contains("\"CC\" = 44"));
        assert!(variable_query(&s, &phi2(&s)).is_none());
    }

    #[test]
    fn two_queries_union() {
        let s = schema();
        let (qc, qv) = two_queries(&s, &[phi1(&s), phi2(&s)]);
        assert!(qc.unwrap().contains("SELECT"));
        assert!(qv.unwrap().contains("HAVING"));
        let (qc2, qv2) = two_queries(&s, &[phi1(&s)]);
        assert!(qc2.is_none());
        assert!(qv2.is_some());
    }

    #[test]
    fn literals_escaped() {
        let s = schema();
        let cfd = Cfd::from_names(
            0,
            &s,
            &[("city", Some(Value::str("O'Hare")))],
            ("street", Some(Value::str("x"))),
        )
        .unwrap();
        let q = constant_query(&s, &cfd).unwrap();
        assert!(q.contains("'O''Hare'"));
    }

    #[test]
    fn wildcard_only_pattern_uses_trivial_where() {
        let s = schema();
        let fd = Cfd::from_names(0, &s, &[("zip", None)], ("street", None)).unwrap();
        let q = variable_query(&s, &fd).unwrap();
        assert!(q.contains("1 = 1"));
    }
}
