//! Centralized ground-truth detector.
//!
//! When `D` is centralized, "two SQL queries suffice to detect violations of
//! a set of CFDs" (§1, \[9]). This module is the algorithmic equivalent: one
//! pass per CFD for constant patterns (the first "query") and one grouped
//! pass for variable patterns (the second). It exists as the *oracle* that
//! every distributed and incremental algorithm in this repository is tested
//! against, and as the "from scratch" cost reference.
//!
//! Both passes scan the relation's **columns** directly: pattern constants
//! resolve to the relation's own dictionary symbols once per CFD, after
//! which pattern checks, group keys and the distinct-RHS test are pure
//! integer comparisons over `&[Sym]` slices — no tuple materialization, no
//! pass-local re-interning.

use crate::cfd::{Cfd, CfdId};
use crate::pattern::PatternValue;
use crate::violation::Violations;
use relation::{FxHashMap, Relation, SmallVec, Sym, Tid};

/// Interned group key `t[X]` — inline for the common arities.
type GroupKey = SmallVec<Sym, 4>;

/// The constant LHS atoms of `cfd` resolved to `d`'s dictionary symbols.
/// `None` means some constant never occurs in `d` — no tuple can match.
pub(crate) fn atom_syms(cfd: &Cfd, d: &Relation) -> Option<SmallVec<(relation::AttrId, Sym), 4>> {
    let mut out = SmallVec::new();
    for (&a, p) in cfd.lhs.iter().zip(&cfd.lhs_pattern) {
        if let PatternValue::Const(v) = p {
            out.push((a, d.pool().lookup(v)?));
        }
    }
    Some(out)
}

/// Compute `V(Σ, D)` from scratch on a centralized relation.
pub fn detect(cfds: &[Cfd], d: &Relation) -> Violations {
    let mut v = Violations::new(cfds.len());
    for cfd in cfds {
        detect_one(cfd, d, &mut v);
    }
    v
}

/// Compute `V(φ, D)` for a single CFD, merging into `out`.
pub fn detect_one(cfd: &Cfd, d: &Relation, out: &mut Violations) {
    let Some(atoms) = atom_syms(cfd, d) else {
        return; // some LHS constant never occurs in D
    };
    let store = d.store();
    let matches_row = |row: u32| atoms.iter().all(|&(a, s)| store.col(a)[row as usize] == s);
    if cfd.is_constant() {
        // A constant CFD is violated by a single tuple: pattern-matching LHS
        // with an RHS that does not match the RHS constant. A constant that
        // is absent from the dictionary is violated by every matching row.
        let rhs_sym = match &cfd.rhs_pattern {
            PatternValue::Const(v) => d.pool().lookup(v),
            PatternValue::Wildcard => unreachable!("constant CFD has a const RHS"),
        };
        let rhs_col = store.col(cfd.rhs);
        for (tid, row) in store.rows() {
            if matches_row(row) && Some(rhs_col[row as usize]) != rhs_sym {
                out.add(cfd.id, tid);
            }
        }
    } else {
        // A variable CFD: group pattern-matching rows by t[X]; every member
        // of a group with ≥ 2 distinct RHS symbols is a violation.
        let rhs_col = store.col(cfd.rhs);
        let mut groups: FxHashMap<GroupKey, (Vec<Tid>, Sym, bool)> = FxHashMap::default();
        for (tid, row) in store.rows() {
            if !matches_row(row) {
                continue;
            }
            let key: GroupKey = cfd
                .lhs
                .iter()
                .map(|&a| store.col(a)[row as usize])
                .collect();
            let b = rhs_col[row as usize];
            let entry = groups.entry(key).or_insert((Vec::new(), b, false));
            entry.0.push(tid);
            if entry.1 != b {
                entry.2 = true;
            }
        }
        for (_, (tids, _, mixed)) in groups {
            if mixed {
                for tid in tids {
                    out.add(cfd.id, tid);
                }
            }
        }
    }
}

/// Convenience: violations of a single CFD as a fresh container (used in
/// unit tests).
pub fn detect_single(cfd: &Cfd, d: &Relation) -> Violations {
    let mut v = Violations::new(cfd.id as usize + 1);
    detect_one(cfd, d, &mut v);
    v
}

/// Number of (cfd, tid) violation marks a rule set produces on `d` —
/// convenience for experiment reporting.
pub fn count_marks(cfds: &[Cfd], d: &Relation) -> usize {
    detect(cfds, d).total_marks()
}

/// Ids of CFDs violated by at least one tuple (diagnostic helper).
pub fn violated_cfds(cfds: &[Cfd], d: &Relation) -> Vec<CfdId> {
    let v = detect(cfds, d);
    (0..cfds.len() as CfdId)
        .filter(|&c| !v.of_cfd(c).is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, Tuple, Value};
    use std::sync::Arc;

    /// The EMP relation of Fig. 2 (t1–t5) restricted to the attributes the
    /// two CFDs of Fig. 1 touch.
    fn emp() -> (Arc<Schema>, Relation) {
        let s = Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap();
        let rows: Vec<(i64, i64, &str, &str, &str)> = vec![
            (44, 131, "EH4 8LE", "Mayfield", "NYC"), // t1
            (44, 131, "EH2 4HF", "Preston", "EDI"),  // t2
            (44, 131, "EH4 8LE", "Mayfield", "EDI"), // t3
            (44, 131, "EH4 8LE", "Mayfield", "EDI"), // t4
            (44, 131, "EH4 8LE", "Crichton", "EDI"), // t5
        ];
        let mut d = Relation::new(s.clone());
        for (i, (cc, ac, zip, street, city)) in rows.into_iter().enumerate() {
            let tid = (i + 1) as Tid;
            d.insert(Tuple::new(
                tid,
                vec![
                    Value::int(tid as i64),
                    Value::int(cc),
                    Value::int(ac),
                    Value::str(zip),
                    Value::str(street),
                    Value::str(city),
                ],
            ))
            .unwrap();
        }
        (s, d)
    }

    fn fig1_cfds(s: &Schema) -> Vec<Cfd> {
        vec![
            Cfd::from_names(
                0,
                s,
                &[("CC", Some(Value::int(44))), ("zip", None)],
                ("street", None),
            )
            .unwrap(),
            Cfd::from_names(
                1,
                s,
                &[("CC", Some(Value::int(44))), ("AC", Some(Value::int(131)))],
                ("city", Some(Value::str("EDI"))),
            )
            .unwrap(),
        ]
    }

    #[test]
    fn reproduces_fig1_violation_table() {
        let (s, d) = emp();
        let cfds = fig1_cfds(&s);
        let v = detect(&cfds, &d);
        // φ1: t1, t3, t4, t5 (same zip EH4 8LE, streets Mayfield vs Crichton)
        let mut phi1: Vec<Tid> = v.of_cfd(0).iter().copied().collect();
        phi1.sort_unstable();
        assert_eq!(phi1, vec![1, 3, 4, 5]);
        // φ2: t1 alone (city NYC under CC=44, AC=131)
        let mut phi2: Vec<Tid> = v.of_cfd(1).iter().copied().collect();
        phi2.sort_unstable();
        assert_eq!(phi2, vec![1]);
        // Combined: {t1, t3, t4, t5}
        assert_eq!(v.tids_sorted(), vec![1, 3, 4, 5]);
        assert_eq!(violated_cfds(&cfds, &d), vec![0, 1]);
    }

    #[test]
    fn satisfying_relation_has_no_violations() {
        let (s, mut d) = emp();
        let cfds = fig1_cfds(&s);
        // Remove the offending tuples: t1 (wrong city + street clash) and
        // t5 (street clash).
        d.delete(1).unwrap();
        d.delete(5).unwrap();
        let v = detect(&cfds, &d);
        assert!(v.is_empty(), "remaining tuples agree on street and city");
    }

    #[test]
    fn variable_cfd_groups_by_full_lhs() {
        let (s, d) = emp();
        // zip alone (no CC constant): same groups here, still violations.
        let cfd = Cfd::from_names(0, &s, &[("zip", None)], ("street", None)).unwrap();
        let v = detect_single(&cfd, &d);
        assert_eq!(v.tids_sorted(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn pattern_excludes_non_matching_tuples() {
        let (s, mut d) = emp();
        // Make t5 a non-UK tuple: the φ1 group loses the Crichton conflict …
        let t5 = d.delete(5).unwrap();
        let mut vals: Vec<Value> = t5.values.to_vec();
        vals[1] = Value::int(1); // CC = 1
        d.insert(Tuple::new(5, vals)).unwrap();
        let cfds = fig1_cfds(&s);
        let v = detect(&cfds, &d);
        // … so only φ2's single-tuple violation of t1 remains.
        assert!(v.of_cfd(0).is_empty());
        assert_eq!(v.tids_sorted(), vec![1]);
    }

    #[test]
    fn count_marks_counts_pairs() {
        let (s, d) = emp();
        let cfds = fig1_cfds(&s);
        assert_eq!(count_marks(&cfds, &d), 5); // 4 for φ1 + 1 for φ2
    }
}
