//! The [`Cfd`] type, tableau form and normalization (§2.1).
//!
//! Internally every CFD is kept in the *normal form* `(X → B, t_p)` with a
//! single RHS attribute. Multi-attribute RHS dependencies and pattern
//! tableaux (`(X → Y, T_p)`) are supported at construction time and
//! normalized into one `Cfd` per (RHS attribute × tableau row), which is the
//! form all of the paper's algorithms operate on.

use crate::pattern::{matches_all_iter, PatternValue};
use crate::CfdError;
use relation::{AttrId, Schema, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// Identifier of a normalized CFD within a rule set `Σ`.
pub type CfdId = u32;

/// A conditional functional dependency in normal form `(X → B, t_p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfd {
    /// Identifier within `Σ` (positional).
    pub id: CfdId,
    /// LHS attributes `X` (deduplicated, construction order preserved).
    pub lhs: Vec<AttrId>,
    /// RHS attribute `B`.
    pub rhs: AttrId,
    /// Pattern over `X`, positionally aligned with `lhs`.
    pub lhs_pattern: Vec<PatternValue>,
    /// Pattern over `B`.
    pub rhs_pattern: PatternValue,
}

impl Cfd {
    /// Build a normal-form CFD, validating attribute ids against `schema`.
    pub fn new(
        id: CfdId,
        schema: &Schema,
        lhs: Vec<AttrId>,
        rhs: AttrId,
        lhs_pattern: Vec<PatternValue>,
        rhs_pattern: PatternValue,
    ) -> Result<Self, CfdError> {
        if lhs.is_empty() {
            return Err(CfdError::EmptyLhs);
        }
        if lhs_pattern.len() != lhs.len() {
            return Err(CfdError::PatternArity {
                expected: lhs.len(),
                got: lhs_pattern.len(),
            });
        }
        for &a in lhs.iter().chain(std::iter::once(&rhs)) {
            if (a as usize) >= schema.arity() {
                return Err(CfdError::UnknownAttribute(format!("#{a}")));
            }
        }
        if lhs.contains(&rhs) {
            return Err(CfdError::RhsInLhs(schema.attr_name(rhs).to_string()));
        }
        Ok(Cfd {
            id,
            lhs,
            rhs,
            lhs_pattern,
            rhs_pattern,
        })
    }

    /// Convenience constructor from attribute names; `None` pattern entries
    /// are wildcards.
    #[allow(clippy::type_complexity)]
    pub fn from_names(
        id: CfdId,
        schema: &Schema,
        lhs: &[(&str, Option<Value>)],
        rhs: (&str, Option<Value>),
    ) -> Result<Self, CfdError> {
        let mut lhs_ids = Vec::with_capacity(lhs.len());
        let mut lhs_pat = Vec::with_capacity(lhs.len());
        for (name, pat) in lhs {
            let a = schema
                .attr_id(name)
                .map_err(|_| CfdError::UnknownAttribute(name.to_string()))?;
            lhs_ids.push(a);
            lhs_pat.push(match pat {
                Some(v) => PatternValue::Const(v.clone()),
                None => PatternValue::Wildcard,
            });
        }
        let rhs_id = schema
            .attr_id(rhs.0)
            .map_err(|_| CfdError::UnknownAttribute(rhs.0.to_string()))?;
        let rhs_pat = match rhs.1 {
            Some(v) => PatternValue::Const(v),
            None => PatternValue::Wildcard,
        };
        Cfd::new(id, schema, lhs_ids, rhs_id, lhs_pat, rhs_pat)
    }

    /// Is this a *constant* CFD (`t_p[B]` is a constant)?
    pub fn is_constant(&self) -> bool {
        !self.rhs_pattern.is_wildcard()
    }

    /// Is this a *variable* CFD (`t_p[B] = _`)?
    pub fn is_variable(&self) -> bool {
        self.rhs_pattern.is_wildcard()
    }

    /// Is this a plain FD (every pattern entry is `_`)?
    pub fn is_fd(&self) -> bool {
        self.is_variable() && self.lhs_pattern.iter().all(PatternValue::is_wildcard)
    }

    /// All attributes `X ∪ {B}`.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut v = self.lhs.clone();
        v.push(self.rhs);
        v
    }

    /// The constant atoms of the LHS pattern — the conjunction `F_φ` used by
    /// the horizontal local-checkability test (§6).
    pub fn constant_atoms(&self) -> Vec<(AttrId, Value)> {
        self.lhs
            .iter()
            .zip(&self.lhs_pattern)
            .filter_map(|(&a, p)| p.as_const().map(|v| (a, v.clone())))
            .collect()
    }

    /// Does `t[X] ≍ t_p[X]`? (the tuple falls under this CFD's scope) —
    /// borrows through [`Tuple::iter_at`], no per-call vector.
    pub fn matches_lhs(&self, t: &Tuple) -> bool {
        matches_all_iter(t.iter_at(&self.lhs), &self.lhs_pattern)
    }

    /// The LHS values `t[X]` of a tuple, cloned (the group key for
    /// violations). Read-only consumers should prefer
    /// `t.iter_at(&cfd.lhs)` or intern through a
    /// [`relation::ValuePool`] instead of cloning per probe.
    pub fn lhs_values(&self, t: &Tuple) -> Vec<Value> {
        t.values_at(&self.lhs)
    }

    /// Does a single tuple violate a *constant* CFD?
    /// (`t[X] ≍ t_p[X]` and `t[B] 6≍ t_p[B]`.)
    pub fn constant_violation(&self, t: &Tuple) -> bool {
        debug_assert!(self.is_constant());
        self.matches_lhs(t) && !self.rhs_pattern.matches(t.get(self.rhs))
    }

    /// Do two tuples jointly violate this *variable* CFD?
    /// (`(t, t′) 6|= φ` in the paper's notation.)
    pub fn pair_violation(&self, t: &Tuple, u: &Tuple) -> bool {
        debug_assert!(self.is_variable());
        self.matches_lhs(t)
            && self.lhs.iter().all(|&a| t.get(a) == u.get(a))
            && t.get(self.rhs) != u.get(self.rhs)
    }

    /// Render using attribute names from `schema`,
    /// e.g. `([CC=44, zip] -> [city=EDI])`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> CfdDisplay<'a> {
        CfdDisplay { cfd: self, schema }
    }

    /// The canonical [`NormalForm`] of this rule: LHS atoms sorted by
    /// attribute (then pattern) with exact duplicate atoms removed. Two
    /// rules with equal normal forms match the same tuples and violate on
    /// the same tuples — the identity [`crate::share::SharedPlan`] and
    /// [`crate::analysis`] dedupe through.
    pub fn normal_form(&self) -> NormalForm {
        let mut lhs: Vec<(AttrId, PatternValue)> = self
            .lhs
            .iter()
            .copied()
            .zip(self.lhs_pattern.iter().cloned())
            .collect();
        lhs.sort_unstable();
        lhs.dedup();
        NormalForm {
            lhs,
            rhs: self.rhs,
            rhs_pattern: self.rhs_pattern.clone(),
        }
    }

    /// A copy of this rule in canonical atom order (the [`NormalForm`]'s
    /// LHS order), keeping the id. Normalizing never changes which tuples
    /// a rule matches or violates.
    pub fn normalized(&self) -> Cfd {
        let nf = self.normal_form();
        let (lhs, lhs_pattern) = nf.lhs.into_iter().unzip();
        Cfd {
            id: self.id,
            lhs,
            rhs: self.rhs,
            lhs_pattern,
            rhs_pattern: self.rhs_pattern.clone(),
        }
    }
}

/// The canonical form of a [`Cfd`]: sorted, deduplicated LHS atoms plus
/// the RHS atom. `Eq`/`Hash`/`Ord` are stable across LHS attribute order
/// and repeated atoms, so this is the dedupe key for "the same rule
/// written twice" (duplicate-modulo-LHS-order catalogs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NormalForm {
    /// LHS `(attr, pattern)` atoms, sorted by attribute then pattern.
    pub lhs: Vec<(AttrId, PatternValue)>,
    /// RHS attribute `B`.
    pub rhs: AttrId,
    /// Pattern over `B`.
    pub rhs_pattern: PatternValue,
}

/// Helper for [`Cfd::display`].
pub struct CfdDisplay<'a> {
    cfd: &'a Cfd,
    schema: &'a Schema,
}

impl fmt::Display for CfdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "([")?;
        for (i, (&a, p)) in self.cfd.lhs.iter().zip(&self.cfd.lhs_pattern).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                PatternValue::Wildcard => write!(f, "{}", self.schema.attr_name(a))?,
                PatternValue::Const(v) => write!(f, "{}={}", self.schema.attr_name(a), v)?,
            }
        }
        write!(f, "] -> [")?;
        match &self.cfd.rhs_pattern {
            PatternValue::Wildcard => write!(f, "{}", self.schema.attr_name(self.cfd.rhs))?,
            PatternValue::Const(v) => write!(f, "{}={}", self.schema.attr_name(self.cfd.rhs), v)?,
        }
        write!(f, "])")
    }
}

/// A CFD in tableau form: `(X → Y, T_p)` with possibly several RHS
/// attributes and several pattern rows (§2.1: "a set of CFDs of the form
/// `(X→Y, t_pi)` can be converted to an equivalent `(X → Y, T_p)`").
#[derive(Debug, Clone)]
pub struct Tableau {
    /// LHS attributes.
    pub lhs: Vec<AttrId>,
    /// RHS attributes.
    pub rhs: Vec<AttrId>,
    /// Pattern rows; each row is aligned with `lhs ++ rhs`.
    pub rows: Vec<Vec<PatternValue>>,
}

impl Tableau {
    /// Normalize into single-RHS, single-row CFDs with ids starting at
    /// `first_id`. Exact duplicate rows collapse to their first
    /// occurrence (a repeated row adds no constraint). Returns the
    /// normalized rules in deterministic order.
    pub fn normalize(&self, schema: &Schema, first_id: CfdId) -> Result<Vec<Cfd>, CfdError> {
        let width = self.lhs.len() + self.rhs.len();
        let mut out = Vec::new();
        let mut id = first_id;
        let mut seen_rows: std::collections::HashSet<&[PatternValue]> = Default::default();
        for row in &self.rows {
            if row.len() != width {
                return Err(CfdError::PatternArity {
                    expected: width,
                    got: row.len(),
                });
            }
            if !seen_rows.insert(row.as_slice()) {
                continue;
            }
            for (j, &b) in self.rhs.iter().enumerate() {
                let cfd = Cfd::new(
                    id,
                    schema,
                    self.lhs.clone(),
                    b,
                    row[..self.lhs.len()].to_vec(),
                    row[self.lhs.len() + j].clone(),
                )?;
                out.push(cfd);
                id += 1;
            }
        }
        Ok(out)
    }
}

/// A rule set `Σ`: normalized CFDs with contiguous ids, plus the schema they
/// are defined over.
#[derive(Debug, Clone)]
pub struct RuleSet {
    schema: Arc<Schema>,
    cfds: Vec<Cfd>,
}

impl RuleSet {
    /// Build from already-normalized CFDs; re-assigns contiguous ids.
    pub fn new(schema: Arc<Schema>, mut cfds: Vec<Cfd>) -> Self {
        for (i, c) in cfds.iter_mut().enumerate() {
            c.id = i as CfdId;
        }
        RuleSet { schema, cfds }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All CFDs.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Number of CFDs (`|Σ|`).
    pub fn len(&self) -> usize {
        self.cfds.len()
    }

    /// Is the rule set empty?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty()
    }

    /// CFD by id.
    pub fn get(&self, id: CfdId) -> &Cfd {
        &self.cfds[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;

    fn schema() -> Arc<Schema> {
        Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap()
    }

    fn phi1(s: &Schema) -> Cfd {
        // ([CC=44, zip] -> [street])
        Cfd::from_names(
            0,
            s,
            &[("CC", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap()
    }

    fn phi2(s: &Schema) -> Cfd {
        // ([CC=44, AC=131] -> [city=EDI])
        Cfd::from_names(
            1,
            s,
            &[("CC", Some(Value::int(44))), ("AC", Some(Value::int(131)))],
            ("city", Some(Value::str("EDI"))),
        )
        .unwrap()
    }

    fn tup(tid: u64, cc: i64, ac: i64, zip: &str, street: &str, city: &str) -> Tuple {
        Tuple::new(
            tid,
            vec![
                Value::int(tid as i64),
                Value::int(cc),
                Value::int(ac),
                Value::str(zip),
                Value::str(street),
                Value::str(city),
            ],
        )
    }

    #[test]
    fn classification() {
        let s = schema();
        assert!(phi1(&s).is_variable());
        assert!(!phi1(&s).is_constant());
        assert!(phi2(&s).is_constant());
        assert!(!phi1(&s).is_fd());
        let fd = Cfd::from_names(2, &s, &[("zip", None)], ("city", None)).unwrap();
        assert!(fd.is_fd());
    }

    #[test]
    fn lhs_matching_respects_constants() {
        let s = schema();
        let t_uk = tup(1, 44, 131, "EH4 8LE", "Mayfield", "NYC");
        let t_us = tup(2, 1, 212, "10001", "5th Ave", "NYC");
        assert!(phi1(&s).matches_lhs(&t_uk));
        assert!(!phi1(&s).matches_lhs(&t_us));
    }

    #[test]
    fn constant_violation_single_tuple() {
        let s = schema();
        let t1 = tup(1, 44, 131, "EH4 8LE", "Mayfield", "NYC");
        let t2 = tup(2, 44, 131, "EH2 4HF", "Preston", "EDI");
        assert!(phi2(&s).constant_violation(&t1)); // city NYC ≠ EDI
        assert!(!phi2(&s).constant_violation(&t2));
        let t_us = tup(3, 1, 131, "x", "y", "NYC");
        assert!(!phi2(&s).constant_violation(&t_us)); // pattern not matched
    }

    #[test]
    fn pair_violation_example_4() {
        let s = schema();
        // t1, t5 of Fig. 2: same CC/zip, different street.
        let t1 = tup(1, 44, 131, "EH4 8LE", "Mayfield", "NYC");
        let t5 = tup(5, 44, 131, "EH4 8LE", "Crichton", "EDI");
        assert!(phi1(&s).pair_violation(&t1, &t5));
        assert!(phi1(&s).pair_violation(&t5, &t1));
        // Same street → no violation.
        let t3 = tup(3, 44, 131, "EH4 8LE", "Mayfield", "EDI");
        assert!(!phi1(&s).pair_violation(&t1, &t3));
    }

    #[test]
    fn constant_atoms_form_f_phi() {
        let s = schema();
        let atoms = phi2(&s).constant_atoms();
        assert_eq!(
            atoms,
            vec![
                (s.attr_id("CC").unwrap(), Value::int(44)),
                (s.attr_id("AC").unwrap(), Value::int(131)),
            ]
        );
        assert_eq!(phi1(&s).constant_atoms().len(), 1);
    }

    #[test]
    fn display_round_trip_shape() {
        let s = schema();
        assert_eq!(
            phi1(&s).display(&s).to_string(),
            "([CC=44, zip] -> [street])"
        );
        assert_eq!(
            phi2(&s).display(&s).to_string(),
            "([CC=44, AC=131] -> [city=EDI])"
        );
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        assert!(matches!(
            Cfd::new(0, &s, vec![], 1, vec![], PatternValue::Wildcard),
            Err(CfdError::EmptyLhs)
        ));
        assert!(matches!(
            Cfd::new(
                0,
                &s,
                vec![1],
                1,
                vec![PatternValue::Wildcard],
                PatternValue::Wildcard
            ),
            Err(CfdError::RhsInLhs(_))
        ));
        assert!(matches!(
            Cfd::new(
                0,
                &s,
                vec![1, 2],
                3,
                vec![PatternValue::Wildcard],
                PatternValue::Wildcard
            ),
            Err(CfdError::PatternArity {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            Cfd::new(
                0,
                &s,
                vec![99],
                1,
                vec![PatternValue::Wildcard],
                PatternValue::Wildcard
            ),
            Err(CfdError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn tableau_normalization() {
        let s = schema();
        let tab = Tableau {
            lhs: vec![s.attr_id("CC").unwrap(), s.attr_id("AC").unwrap()],
            rhs: vec![s.attr_id("city").unwrap(), s.attr_id("street").unwrap()],
            rows: vec![
                vec![
                    PatternValue::Const(Value::int(44)),
                    PatternValue::Const(Value::int(131)),
                    PatternValue::Const(Value::str("EDI")),
                    PatternValue::Wildcard,
                ],
                vec![
                    PatternValue::Const(Value::int(1)),
                    PatternValue::Wildcard,
                    PatternValue::Wildcard,
                    PatternValue::Wildcard,
                ],
            ],
        };
        let cfds = tab.normalize(&s, 10).unwrap();
        assert_eq!(cfds.len(), 4); // 2 rows × 2 RHS attrs
        assert_eq!(cfds[0].id, 10);
        assert_eq!(cfds[3].id, 13);
        assert!(cfds[0].is_constant());
        assert!(cfds[1].is_variable());
    }

    #[test]
    fn normal_form_is_order_and_duplicate_blind() {
        let s = schema();
        let a = Cfd::from_names(
            0,
            &s,
            &[("CC", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        let b = Cfd::from_names(
            1,
            &s,
            &[("zip", None), ("CC", Some(Value::int(44)))],
            ("street", None),
        )
        .unwrap();
        assert_eq!(a.normal_form(), b.normal_form());
        // A repeated identical atom adds nothing.
        let c = Cfd::from_names(
            2,
            &s,
            &[("zip", None), ("CC", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        assert_eq!(a.normal_form(), c.normal_form());
        // Different residual constant ⇒ different rule.
        let d = Cfd::from_names(
            3,
            &s,
            &[("CC", Some(Value::int(1))), ("zip", None)],
            ("street", None),
        )
        .unwrap();
        assert_ne!(a.normal_form(), d.normal_form());
        // normalized() keeps the id and sorts atoms by attribute.
        let nb = b.normalized();
        assert_eq!(nb.id, 1);
        assert_eq!(nb.lhs, a.lhs);
        assert_eq!(nb.lhs_pattern, a.lhs_pattern);
    }

    #[test]
    fn tableau_dedupes_exact_duplicate_rows() {
        let s = schema();
        let row = vec![
            PatternValue::Const(Value::int(44)),
            PatternValue::Wildcard,
            PatternValue::Wildcard,
        ];
        let tab = Tableau {
            lhs: vec![s.attr_id("CC").unwrap(), s.attr_id("AC").unwrap()],
            rhs: vec![s.attr_id("city").unwrap()],
            rows: vec![row.clone(), row],
        };
        let cfds = tab.normalize(&s, 0).unwrap();
        assert_eq!(cfds.len(), 1, "a repeated row adds no constraint");
        assert_eq!(cfds[0].id, 0);
    }

    #[test]
    fn ruleset_reassigns_ids() {
        let s = schema();
        let rs = RuleSet::new(s.clone(), vec![phi2(&s), phi1(&s)]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0).id, 0);
        assert_eq!(rs.get(1).id, 1);
        assert!(rs.get(0).is_constant());
    }
}
