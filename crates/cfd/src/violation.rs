//! Violation containers: `V(Σ, D)` and `ΔV` (§2.3, §3).
//!
//! Violations are *marked with the CFDs they violate* (§4: "Violations are
//! marked with those CFDs that they violate when combining ΔV's for multiple
//! CFDs"). [`Violations`] therefore stores one tid set per CFD plus a global
//! per-tid mark count, so that the tid-level view of `V(Σ, D)` (a tuple is a
//! violation iff it violates *some* CFD) is maintained incrementally.

use crate::cfd::CfdId;
use relation::{FxHashMap, FxHashSet, Tid};

/// The violation set `V(Σ, D)`, marked per CFD.
#[derive(Debug, Clone, Default)]
pub struct Violations {
    per_cfd: Vec<FxHashSet<Tid>>,
    /// tid → number of CFDs it currently violates.
    marks: FxHashMap<Tid, u32>,
}

impl Violations {
    /// Empty violation set for `n_cfds` rules.
    pub fn new(n_cfds: usize) -> Self {
        Violations {
            per_cfd: vec![FxHashSet::default(); n_cfds],
            marks: FxHashMap::default(),
        }
    }

    /// Number of CFDs this set is tracking.
    pub fn n_cfds(&self) -> usize {
        self.per_cfd.len()
    }

    /// Mark `tid` as violating `cfd`. Returns `true` if this is a new mark
    /// for that (cfd, tid) pair.
    pub fn add(&mut self, cfd: CfdId, tid: Tid) -> bool {
        if self.per_cfd[cfd as usize].insert(tid) {
            *self.marks.entry(tid).or_insert(0) += 1;
            true
        } else {
            false
        }
    }

    /// Remove the mark of `cfd` on `tid`. Returns `true` if the mark existed.
    pub fn remove(&mut self, cfd: CfdId, tid: Tid) -> bool {
        if self.per_cfd[cfd as usize].remove(&tid) {
            match self.marks.get_mut(&tid) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.marks.remove(&tid);
                }
                None => unreachable!("mark count out of sync"),
            }
            true
        } else {
            false
        }
    }

    /// Is `tid` a violation of `cfd`?
    pub fn contains(&self, cfd: CfdId, tid: Tid) -> bool {
        self.per_cfd[cfd as usize].contains(&tid)
    }

    /// Is `tid` a violation of any CFD (member of the tid-level `V(Σ,D)`)?
    pub fn is_violation(&self, tid: Tid) -> bool {
        self.marks.contains_key(&tid)
    }

    /// Violations of one CFD.
    pub fn of_cfd(&self, cfd: CfdId) -> &FxHashSet<Tid> {
        &self.per_cfd[cfd as usize]
    }

    /// Number of distinct violating tuples.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Total number of (cfd, tid) marks — the size `|V|` used in the cost
    /// analyses (a tuple violating two CFDs is "two" units of output change).
    pub fn total_marks(&self) -> usize {
        self.per_cfd
            .iter()
            .map(std::collections::HashSet::len)
            .sum()
    }

    /// Is the violation set empty?
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// All violating tids, sorted (deterministic view for tests/reports).
    pub fn tids_sorted(&self) -> Vec<Tid> {
        let mut v: Vec<Tid> = self.marks.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All (cfd, tid) marks, sorted (deterministic view).
    pub fn marks_sorted(&self) -> Vec<(CfdId, Tid)> {
        let mut v: Vec<(CfdId, Tid)> = self
            .per_cfd
            .iter()
            .enumerate()
            .flat_map(|(c, s)| s.iter().map(move |&t| (c as CfdId, t)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Symmetric difference against another violation set, as (added to
    /// reach `other`, removed to reach `other`). Used by tests to compare an
    /// incremental result with the oracle.
    pub fn diff(&self, other: &Violations) -> DeltaV {
        let mut d = DeltaV::default();
        let n = self.per_cfd.len().max(other.per_cfd.len());
        for c in 0..n {
            let a = self.per_cfd.get(c);
            let b = other.per_cfd.get(c);
            if let Some(b) = b {
                for &t in b {
                    if a.is_none_or(|a| !a.contains(&t)) {
                        d.added.push((c as CfdId, t));
                    }
                }
            }
            if let Some(a) = a {
                for &t in a {
                    if b.is_none_or(|b| !b.contains(&t)) {
                        d.removed.push((c as CfdId, t));
                    }
                }
            }
        }
        d.added.sort_unstable();
        d.removed.sort_unstable();
        d
    }
}

/// The change `ΔV = ΔV⁺ ∪ ΔV⁻` to a violation set, at (cfd, tid) mark
/// granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaV {
    /// Marks added (`ΔV⁺`).
    pub added: Vec<(CfdId, Tid)>,
    /// Marks removed (`ΔV⁻`).
    pub removed: Vec<(CfdId, Tid)>,
}

impl DeltaV {
    /// Record an added mark.
    pub fn add(&mut self, cfd: CfdId, tid: Tid) {
        self.added.push((cfd, tid));
    }

    /// Record a removed mark.
    pub fn remove(&mut self, cfd: CfdId, tid: Tid) {
        self.removed.push((cfd, tid));
    }

    /// Size `|ΔV|` (number of marks changed).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Merge another delta into this one, then [`settle`](Self::settle):
    /// a mark added by one delta and removed by the other nets to a no-op.
    pub fn merge(&mut self, other: DeltaV) {
        self.added.extend(other.added);
        self.removed.extend(other.removed);
        self.settle();
    }

    /// Canonicalize to the *net* change: a mark that was removed and
    /// re-added (or added and re-removed) within the delta cancels out,
    /// duplicates collapse, and both lists come out sorted. Since `V(Σ,D)`
    /// is a set, recorded transitions for one `(cfd, tid)` mark strictly
    /// alternate between add and remove, so the net effect is determined
    /// by the count difference alone.
    pub fn settle(&mut self) {
        let mut net: FxHashMap<(CfdId, Tid), i64> = FxHashMap::default();
        for &m in &self.added {
            *net.entry(m).or_insert(0) += 1;
        }
        for &m in &self.removed {
            *net.entry(m).or_insert(0) -= 1;
        }
        self.added.clear();
        self.removed.clear();
        for (m, n) in net {
            match n.cmp(&0) {
                std::cmp::Ordering::Greater => self.added.push(m),
                std::cmp::Ordering::Less => self.removed.push(m),
                std::cmp::Ordering::Equal => {}
            }
        }
        self.added.sort_unstable();
        self.removed.sort_unstable();
    }

    /// Distinct tids with added marks, sorted.
    pub fn added_tids_sorted(&self) -> Vec<Tid> {
        let mut v: Vec<Tid> = self.added.iter().map(|&(_, t)| t).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct tids with removed marks, sorted.
    pub fn removed_tids_sorted(&self) -> Vec<Tid> {
        let mut v: Vec<Tid> = self.removed.iter().map(|&(_, t)| t).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Canonical sorted form (for equality assertions in tests).
    pub fn sorted(mut self) -> DeltaV {
        self.added.sort_unstable();
        self.added.dedup();
        self.removed.sort_unstable();
        self.removed.dedup();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_and_mark_counts() {
        let mut v = Violations::new(2);
        assert!(v.add(0, 7));
        assert!(!v.add(0, 7)); // duplicate mark
        assert!(v.add(1, 7));
        assert_eq!(v.len(), 1); // one distinct tuple
        assert_eq!(v.total_marks(), 2);
        assert!(v.is_violation(7));

        assert!(v.remove(0, 7));
        assert!(v.is_violation(7)); // still marked by cfd 1
        assert!(v.remove(1, 7));
        assert!(!v.is_violation(7));
        assert!(!v.remove(1, 7)); // already gone
        assert!(v.is_empty());
    }

    #[test]
    fn sorted_views_deterministic() {
        let mut v = Violations::new(2);
        v.add(1, 5);
        v.add(0, 9);
        v.add(0, 2);
        assert_eq!(v.tids_sorted(), vec![2, 5, 9]);
        assert_eq!(v.marks_sorted(), vec![(0, 2), (0, 9), (1, 5)]);
    }

    #[test]
    fn diff_computes_delta() {
        let mut a = Violations::new(1);
        a.add(0, 1);
        a.add(0, 2);
        let mut b = Violations::new(1);
        b.add(0, 2);
        b.add(0, 3);
        let d = a.diff(&b);
        assert_eq!(d.added, vec![(0, 3)]);
        assert_eq!(d.removed, vec![(0, 1)]);
    }

    #[test]
    fn delta_merge_and_views() {
        let mut d = DeltaV::default();
        d.add(0, 4);
        d.add(1, 4);
        d.remove(0, 2);
        let mut e = DeltaV::default();
        e.add(0, 1);
        d.merge(e);
        assert_eq!(d.len(), 4);
        assert_eq!(d.added_tids_sorted(), vec![1, 4]);
        assert_eq!(d.removed_tids_sorted(), vec![2]);
    }

    #[test]
    fn settle_cancels_remove_then_readd() {
        // A mark removed and re-added within one batch is a no-op.
        let mut d = DeltaV::default();
        d.remove(0, 7);
        d.add(0, 7);
        d.add(1, 7);
        d.settle();
        assert_eq!(d.added, vec![(1, 7)]);
        assert!(d.removed.is_empty());

        // Alternating transitions net to the count difference.
        let mut d = DeltaV::default();
        d.add(0, 3); // in
        d.remove(0, 3); // out
        d.add(0, 3); // in again → net add
        d.settle();
        assert_eq!(d.added, vec![(0, 3)]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn merge_nets_across_deltas() {
        let mut d = DeltaV::default();
        d.add(0, 1);
        let mut e = DeltaV::default();
        e.remove(0, 1);
        e.add(0, 2);
        d.merge(e);
        assert_eq!(d.added, vec![(0, 2)]);
        assert!(d.removed.is_empty());
    }
}
