//! Pattern values and the match operator `≍` (§2.1).
//!
//! A pattern entry is either a constant from the attribute domain or the
//! unnamed variable `_`. The operator `≍` relates values and patterns:
//! `v ≍ p` iff `p` is `_` or `p` is the constant `v`.

use relation::Value;
use std::fmt;

/// One entry of a pattern tuple: a constant or the unnamed variable `_`.
///
/// The `Ord` instance (wildcard first, then constants by value order) gives
/// [`crate::cfd::NormalForm`] a stable sort key; it carries no semantic
/// meaning beyond determinism.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternValue {
    /// The unnamed variable `_`: matches any value.
    Wildcard,
    /// A constant: matches only itself.
    Const(Value),
}

impl PatternValue {
    /// The match operator `≍` on a single value.
    #[inline]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::Const(c) => c == v,
        }
    }

    /// Is this the unnamed variable?
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternValue::Wildcard)
    }

    /// The constant, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PatternValue::Wildcard => None,
            PatternValue::Const(c) => Some(c),
        }
    }

    /// Does every value matching `other` also match `self`? (`_`
    /// generalizes everything; a constant generalizes only itself.) The
    /// pointwise order behind pattern-tableau subsumption in
    /// [`crate::analysis`].
    pub fn generalizes(&self, other: &PatternValue) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::Const(_) => self == other,
        }
    }
}

/// `≍` extended to tuples of values vs. tuples of patterns.
pub fn matches_all(values: &[&Value], patterns: &[PatternValue]) -> bool {
    matches_all_iter(values.iter().copied(), patterns)
}

/// [`matches_all`] over a borrowed-value iterator — the allocation-free
/// form for call sites (e.g. [`Tuple::iter_at`](relation::Tuple::iter_at)
/// consumers) that don't have a collected slice.
pub fn matches_all_iter<'a>(
    values: impl ExactSizeIterator<Item = &'a Value>,
    patterns: &[PatternValue],
) -> bool {
    debug_assert_eq!(values.len(), patterns.len());
    values.zip(patterns).all(|(v, p)| p.matches(v))
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Wildcard => write!(f, "_"),
            PatternValue::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Value> for PatternValue {
    fn from(v: Value) -> Self {
        PatternValue::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matches_everything() {
        assert!(PatternValue::Wildcard.matches(&Value::int(1)));
        assert!(PatternValue::Wildcard.matches(&Value::str("x")));
        assert!(PatternValue::Wildcard.matches(&Value::Null));
    }

    #[test]
    fn constant_matches_only_itself() {
        let p = PatternValue::Const(Value::int(44));
        assert!(p.matches(&Value::int(44)));
        assert!(!p.matches(&Value::int(131)));
        assert!(!p.matches(&Value::str("44")));
    }

    #[test]
    fn tuple_match_example_from_paper() {
        // (131, EDI) ≍ (_, EDI) but (131, EDI) 6≍ (_, NYC)
        let v131 = Value::int(131);
        let edi = Value::str("EDI");
        let vals = [&v131, &edi];
        let p_ok = [
            PatternValue::Wildcard,
            PatternValue::Const(Value::str("EDI")),
        ];
        let p_no = [
            PatternValue::Wildcard,
            PatternValue::Const(Value::str("NYC")),
        ];
        assert!(matches_all(&vals, &p_ok));
        assert!(!matches_all(&vals, &p_no));
    }

    #[test]
    fn accessors() {
        assert!(PatternValue::Wildcard.is_wildcard());
        assert_eq!(PatternValue::Wildcard.as_const(), None);
        let c = PatternValue::Const(Value::int(3));
        assert!(!c.is_wildcard());
        assert_eq!(c.as_const(), Some(&Value::int(3)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PatternValue::Wildcard.to_string(), "_");
        assert_eq!(PatternValue::Const(Value::str("EDI")).to_string(), "EDI");
    }
}
