//! Non-CFD constraint classes compiled onto the CFD delta machinery.
//!
//! The paper's incremental pipeline — delta plans (§3), shared operators
//! (§5), distributed evaluation (§4/§6) — is more general than CFDs. This
//! module grows the rule vocabulary with the four classic data-quality
//! constraint classes and a unified violation surface:
//!
//! * **Keys** (`Check::key`): uniqueness of an attribute list `X`. A key
//!   compiles to the all-wildcard FD `X → id` (the schema's tuple-id
//!   attribute), which rides every detector strategy verbatim; the one
//!   case the FD cannot see — two tuples identical on `X ∪ {id}` — is
//!   covered by a constant-time duplicate-bucket residual in the suite
//!   layer (`incdetect::suite`).
//! * **Completeness / not-null** (`Check::complete`): attribute `A` must
//!   be non-null. Compiles to the constant CFD `([A = ⊥] → [probe = ⊥])`
//!   over a probe attribute `≠ A`; the residual (tuples null on *both*)
//!   is again a per-tuple constant-time check in the suite.
//! * **Inclusion dependencies** (`Check::inclusion`):
//!   `R[X] ⊆ S[Y]` across relations. Evaluated by the suite as a
//!   count-indexed containment delta (`O(|ΔD| + |Δfindings|)`), with the
//!   referenced relation hash-partitioned over sites and each probe
//!   metered as cross-site traffic.
//! * **Simple aggregates** (`Check::row_count` / `Check::sum_range` /
//!   `Check::min_at_least` / `Check::max_at_most`): per-group row-count /
//!   sum / min / max bounds, maintained by delete-safe per-group
//!   multiset state.
//!
//! Every check exposes the [`DeltaPlan`] skeleton it evaluates through
//! ([`Constraint::delta_plan`]) — keys and completeness literally compile
//! to CFD plans, inclusion and aggregates to the shared
//! `ScanDelta → GroupBy` prefix — so the §5 sharing analysis applies to
//! the whole catalog.
//!
//! Findings are reported uniformly: a [`RuleId`] names a rule of the
//! combined catalog (CFDs and checks alike), and a [`Finding`] pairs it
//! with the violating tuples. [`Violations`]/[`DeltaV`] convert into the
//! unified shapes ([`FindingSet::from`]/[`DeltaFindings::from`]), so the
//! CFD-only surface remains a thin view of the same stream.

use crate::cfd::{Cfd, CfdId};
use crate::delta::{DeltaOp, DeltaPlan};
use crate::violation::{DeltaV, Violations};
use crate::CfdError;
use relation::{AttrId, FxHashMap, Schema, Tid, Value};

/// Identifies one rule of a combined catalog (CFDs + checks). CFD rules
/// keep their [`CfdId`] as their `RuleId`; checks are numbered after
/// them, in declaration order.
pub type RuleId = u32;

/// The constraint class of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// A conditional functional dependency (§2).
    Cfd,
    /// Uniqueness of an attribute list.
    Key,
    /// Not-null / completeness of one attribute.
    Completeness,
    /// Cross-relation inclusion dependency `R[X] ⊆ S[Y]`.
    Inclusion,
    /// Per-group row-count / sum / min / max bound.
    Aggregate,
}

impl ConstraintKind {
    /// Stable lower-case label (report keys, diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            ConstraintKind::Cfd => "cfd",
            ConstraintKind::Key => "key",
            ConstraintKind::Completeness => "completeness",
            ConstraintKind::Inclusion => "inclusion",
            ConstraintKind::Aggregate => "aggregate",
        }
    }
}

impl std::fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The aggregate function of a [`Check::Aggregate`](Check) bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Rows per group.
    Count,
    /// Sum of an integer attribute per group.
    Sum,
    /// Minimum of an integer attribute per group.
    Min,
    /// Maximum of an integer attribute per group.
    Max,
}

impl AggFunc {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One declared (name-level, unresolved) check of a validation suite.
///
/// Built through the constructors below and resolved against a
/// [`Schema`] by [`Constraint::resolve`] (the suite does this for you).
#[derive(Debug, Clone, PartialEq)]
pub enum Check {
    /// `attrs` is a key: no two tuples agree on all of them.
    Key {
        /// The key attribute names.
        attrs: Vec<String>,
    },
    /// `attr` must be non-null in every tuple.
    Complete {
        /// The constrained attribute name.
        attr: String,
    },
    /// `R[attrs] ⊆ ref_relation[ref_attrs]`.
    Inclusion {
        /// Projection attributes of the checked (primary) relation.
        attrs: Vec<String>,
        /// Name of the referenced relation (registered with
        /// `Suite::reference`).
        ref_relation: String,
        /// Projection attributes of the referenced relation.
        ref_attrs: Vec<String>,
    },
    /// Per-group aggregate bound: `lo ≤ func(group) ≤ hi` for every
    /// group of `group_by` values (unset bounds are unchecked).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated attribute (`None` for [`AggFunc::Count`]).
        attr: Option<String>,
        /// Grouping attributes (empty = one global group).
        group_by: Vec<String>,
        /// Inclusive lower bound.
        lo: Option<i64>,
        /// Inclusive upper bound.
        hi: Option<i64>,
    },
}

impl Check {
    /// Uniqueness of `attrs`.
    pub fn key<I, S>(attrs: I) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Check::Key {
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// `attr` must be non-null.
    pub fn complete(attr: impl Into<String>) -> Check {
        Check::Complete { attr: attr.into() }
    }

    /// `R[attrs] ⊆ ref_relation[ref_attrs]`.
    pub fn inclusion<I, S, J, T>(attrs: I, ref_relation: impl Into<String>, ref_attrs: J) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
        J: IntoIterator<Item = T>,
        T: Into<String>,
    {
        Check::Inclusion {
            attrs: attrs.into_iter().map(Into::into).collect(),
            ref_relation: ref_relation.into(),
            ref_attrs: ref_attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Per-group row count within `[lo, hi]`.
    pub fn row_count<I, S>(group_by: I, lo: Option<i64>, hi: Option<i64>) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Check::Aggregate {
            func: AggFunc::Count,
            attr: None,
            group_by: group_by.into_iter().map(Into::into).collect(),
            lo,
            hi,
        }
    }

    /// Per-group sum of `attr` within `[lo, hi]`.
    pub fn sum_range<I, S>(
        attr: impl Into<String>,
        group_by: I,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Check::Aggregate {
            func: AggFunc::Sum,
            attr: Some(attr.into()),
            group_by: group_by.into_iter().map(Into::into).collect(),
            lo,
            hi,
        }
    }

    /// Per-group minimum of `attr` at least `lo`.
    pub fn min_at_least<I, S>(attr: impl Into<String>, group_by: I, lo: i64) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Check::Aggregate {
            func: AggFunc::Min,
            attr: Some(attr.into()),
            group_by: group_by.into_iter().map(Into::into).collect(),
            lo: Some(lo),
            hi: None,
        }
    }

    /// Per-group maximum of `attr` at most `hi`.
    pub fn max_at_most<I, S>(attr: impl Into<String>, group_by: I, hi: i64) -> Check
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Check::Aggregate {
            func: AggFunc::Max,
            attr: Some(attr.into()),
            group_by: group_by.into_iter().map(Into::into).collect(),
            lo: None,
            hi: Some(hi),
        }
    }

    /// The constraint class this check belongs to.
    pub fn kind(&self) -> ConstraintKind {
        match self {
            Check::Key { .. } => ConstraintKind::Key,
            Check::Complete { .. } => ConstraintKind::Completeness,
            Check::Inclusion { .. } => ConstraintKind::Inclusion,
            Check::Aggregate { .. } => ConstraintKind::Aggregate,
        }
    }

    /// Short human label, e.g. `key(zip, phn)` — used as the rule label
    /// in reports.
    pub fn label(&self) -> String {
        match self {
            Check::Key { attrs } => format!("key({})", attrs.join(", ")),
            Check::Complete { attr } => format!("complete({attr})"),
            Check::Inclusion {
                attrs,
                ref_relation,
                ref_attrs,
            } => format!(
                "[{}] ⊆ {}[{}]",
                attrs.join(", "),
                ref_relation,
                ref_attrs.join(", ")
            ),
            Check::Aggregate {
                func,
                attr,
                group_by,
                lo,
                hi,
            } => {
                let arg = attr.as_deref().unwrap_or("*");
                let by = if group_by.is_empty() {
                    String::new()
                } else {
                    format!(" by {}", group_by.join(", "))
                };
                let lo = lo.map_or(String::new(), |v| format!("{v} ≤ "));
                let hi = hi.map_or(String::new(), |v| format!(" ≤ {v}"));
                format!("{lo}{}({arg}){hi}{by}", func.label())
            }
        }
    }
}

/// Errors resolving a [`Check`] against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// An attribute name missing from the (primary or referenced)
    /// schema.
    UnknownAttribute(String),
    /// An inclusion dependency references a relation the suite was not
    /// given.
    UnknownRelation(String),
    /// Inclusion projection lists differ in length.
    ArityMismatch {
        /// `|X|` on the checked side.
        lhs: usize,
        /// `|Y|` on the referenced side.
        rhs: usize,
    },
    /// A check needs at least one attribute.
    EmptyAttrs,
    /// A key check may not include the schema's tuple-id attribute
    /// (unique by construction — the check would be vacuous, and it has
    /// no CFD compilation).
    KeyCoversTupleId(String),
    /// The schema has a single attribute, so no probe attribute exists
    /// for the completeness compilation.
    NoProbeAttribute(String),
    /// A sum/min/max aggregate needs an aggregated attribute.
    MissingAggAttr,
    /// An aggregate bound with neither `lo` nor `hi` checks nothing.
    NoBounds,
    /// The compiled CFD was rejected (should not happen for resolved
    /// attribute ids; surfaced for completeness).
    Cfd(CfdError),
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            ConstraintError::UnknownRelation(r) => {
                write!(
                    f,
                    "unknown reference relation `{r}` (register it with `reference`)"
                )
            }
            ConstraintError::ArityMismatch { lhs, rhs } => {
                write!(f, "inclusion projection arity mismatch: {lhs} vs {rhs}")
            }
            ConstraintError::EmptyAttrs => write!(f, "check with empty attribute list"),
            ConstraintError::KeyCoversTupleId(a) => {
                write!(
                    f,
                    "key check includes the tuple-id attribute `{a}`, unique by construction"
                )
            }
            ConstraintError::NoProbeAttribute(a) => {
                write!(
                    f,
                    "no probe attribute besides `{a}` for the completeness compilation"
                )
            }
            ConstraintError::MissingAggAttr => {
                write!(f, "sum/min/max aggregate without an aggregated attribute")
            }
            ConstraintError::NoBounds => write!(f, "aggregate bound with neither lo nor hi"),
            ConstraintError::Cfd(e) => write!(f, "compiled CFD rejected: {e}"),
        }
    }
}

impl std::error::Error for ConstraintError {}

impl From<CfdError> for ConstraintError {
    fn from(e: CfdError) -> Self {
        ConstraintError::Cfd(e)
    }
}

/// A [`Check`] resolved against its schema: attribute ids in place of
/// names, plus the compiled [`Cfd`] for the classes that ride the CFD
/// machinery directly.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// Key over `attrs`, compiled to the FD `attrs → id`.
    Key {
        /// The key attribute ids.
        attrs: Vec<AttrId>,
        /// The compiled all-wildcard FD (`attrs → tuple-id attribute`).
        compiled: Cfd,
    },
    /// Not-null on `attr`, compiled to `([attr = ⊥] → [probe = ⊥])`.
    Complete {
        /// The constrained attribute.
        attr: AttrId,
        /// The probe attribute of the compiled constant CFD.
        probe: AttrId,
        /// The compiled constant CFD.
        compiled: Cfd,
    },
    /// `R[attrs] ⊆ ref_relation[ref_attrs]`.
    Inclusion {
        /// Primary-side projection.
        attrs: Vec<AttrId>,
        /// Referenced relation name.
        ref_relation: String,
        /// Referenced-side projection.
        ref_attrs: Vec<AttrId>,
    },
    /// Per-group aggregate bound.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated attribute (`None` for count).
        attr: Option<AttrId>,
        /// Grouping attributes.
        group_by: Vec<AttrId>,
        /// Inclusive lower bound.
        lo: Option<i64>,
        /// Inclusive upper bound.
        hi: Option<i64>,
    },
}

fn resolve_attr(schema: &Schema, name: &str) -> Result<AttrId, ConstraintError> {
    schema
        .attr_id(name)
        .map_err(|_| ConstraintError::UnknownAttribute(name.to_string()))
}

impl Constraint {
    /// Resolve `check` against `schema`, compiling the CFD-backed
    /// classes under CFD id `cfd_id` (callers append compiled CFDs to
    /// the catalog; classes without a compilation ignore the id). For
    /// inclusion dependencies, `ref_schema` must be the schema of the
    /// referenced relation.
    pub fn resolve(
        check: &Check,
        schema: &Schema,
        ref_schema: Option<&Schema>,
        cfd_id: CfdId,
    ) -> Result<Constraint, ConstraintError> {
        match check {
            Check::Key { attrs } => {
                if attrs.is_empty() {
                    return Err(ConstraintError::EmptyAttrs);
                }
                let ids = attrs
                    .iter()
                    .map(|a| resolve_attr(schema, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let key = schema.key();
                if ids.contains(&key) {
                    return Err(ConstraintError::KeyCoversTupleId(
                        schema.attr_name(key).to_string(),
                    ));
                }
                let compiled = Cfd::new(
                    cfd_id,
                    schema,
                    ids.clone(),
                    key,
                    vec![crate::pattern::PatternValue::Wildcard; ids.len()],
                    crate::pattern::PatternValue::Wildcard,
                )?;
                Ok(Constraint::Key {
                    attrs: ids,
                    compiled,
                })
            }
            Check::Complete { attr } => {
                let a = resolve_attr(schema, attr)?;
                // Any attribute other than `a` works as the probe; the
                // schema key is the canonical choice (never null in
                // practice, so the residual set stays tiny).
                let probe = if schema.key() != a {
                    schema.key()
                } else {
                    (0..schema.arity() as AttrId)
                        .find(|&b| b != a)
                        .ok_or_else(|| {
                            ConstraintError::NoProbeAttribute(schema.attr_name(a).to_string())
                        })?
                };
                let compiled = Cfd::new(
                    cfd_id,
                    schema,
                    vec![a],
                    probe,
                    vec![crate::pattern::PatternValue::Const(Value::Null)],
                    crate::pattern::PatternValue::Const(Value::Null),
                )?;
                Ok(Constraint::Complete {
                    attr: a,
                    probe,
                    compiled,
                })
            }
            Check::Inclusion {
                attrs,
                ref_relation,
                ref_attrs,
            } => {
                if attrs.is_empty() || ref_attrs.is_empty() {
                    return Err(ConstraintError::EmptyAttrs);
                }
                if attrs.len() != ref_attrs.len() {
                    return Err(ConstraintError::ArityMismatch {
                        lhs: attrs.len(),
                        rhs: ref_attrs.len(),
                    });
                }
                let rs = ref_schema
                    .ok_or_else(|| ConstraintError::UnknownRelation(ref_relation.clone()))?;
                let ids = attrs
                    .iter()
                    .map(|a| resolve_attr(schema, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let ref_ids = ref_attrs
                    .iter()
                    .map(|a| resolve_attr(rs, a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Constraint::Inclusion {
                    attrs: ids,
                    ref_relation: ref_relation.clone(),
                    ref_attrs: ref_ids,
                })
            }
            Check::Aggregate {
                func,
                attr,
                group_by,
                lo,
                hi,
            } => {
                if lo.is_none() && hi.is_none() {
                    return Err(ConstraintError::NoBounds);
                }
                let attr = match (func, attr) {
                    (AggFunc::Count, _) => None,
                    (_, Some(a)) => Some(resolve_attr(schema, a)?),
                    (_, None) => return Err(ConstraintError::MissingAggAttr),
                };
                let group_by = group_by
                    .iter()
                    .map(|a| resolve_attr(schema, a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Constraint::Aggregate {
                    func: *func,
                    attr,
                    group_by,
                    lo: *lo,
                    hi: *hi,
                })
            }
        }
    }

    /// The constraint class.
    pub fn kind(&self) -> ConstraintKind {
        match self {
            Constraint::Key { .. } => ConstraintKind::Key,
            Constraint::Complete { .. } => ConstraintKind::Completeness,
            Constraint::Inclusion { .. } => ConstraintKind::Inclusion,
            Constraint::Aggregate { .. } => ConstraintKind::Aggregate,
        }
    }

    /// The compiled CFD, for the classes that ride the CFD machinery
    /// directly (keys and completeness).
    pub fn compiled_cfd(&self) -> Option<&Cfd> {
        match self {
            Constraint::Key { compiled, .. } | Constraint::Complete { compiled, .. } => {
                Some(compiled)
            }
            _ => None,
        }
    }

    /// The delta-plan skeleton this constraint evaluates through: the
    /// compiled CFD's plan for keys/completeness, the shared
    /// `ScanDelta → GroupBy` prefix for inclusion and grouped
    /// aggregates — the operator the §5 sharing compiler merges across
    /// the catalog.
    pub fn delta_plan(&self) -> DeltaPlan {
        match self {
            Constraint::Key { compiled, .. } | Constraint::Complete { compiled, .. } => {
                DeltaPlan::compile(compiled)
            }
            Constraint::Inclusion { attrs, .. } => DeltaPlan::group_scan(0, attrs.clone()),
            Constraint::Aggregate { group_by, .. } => DeltaPlan::group_scan(0, group_by.clone()),
        }
    }
}

impl DeltaPlan {
    /// Plan skeleton of a non-CFD group-shaped check:
    /// `ScanDelta → GroupBy{attrs}` (no restricts, no RHS probe — the
    /// sink is the check's own state machine). An empty `attrs` list
    /// (global aggregates) degenerates to the bare scan.
    pub fn group_scan(rule: CfdId, attrs: Vec<AttrId>) -> DeltaPlan {
        let mut ops = vec![DeltaOp::ScanDelta];
        if !attrs.is_empty() {
            ops.push(DeltaOp::GroupBy { attrs });
        }
        DeltaPlan { cfd: rule, ops }
    }
}

/// One reported violation: rule, constraint class and the violating
/// tuples (sorted). Snapshot views carry all of a rule's violating tids;
/// delta views carry the tids that changed in the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Its constraint class.
    pub kind: ConstraintKind,
    /// The violating tuple ids, sorted ascending.
    pub tids: Vec<Tid>,
}

/// The maintained finding set of a combined catalog — the generalization
/// of [`Violations`] to mixed constraint kinds.
///
/// A rule may be certified by more than one evaluation source (a key's
/// compiled FD *and* its duplicate-bucket residual); marks are therefore
/// counted per `(rule, tid)`, and a finding exists while any source
/// holds it.
#[derive(Debug, Clone, Default)]
pub struct FindingSet {
    kinds: Vec<ConstraintKind>,
    counts: Vec<FxHashMap<Tid, u32>>,
}

impl FindingSet {
    /// Empty set over a catalog with the given per-rule kinds.
    pub fn new(kinds: Vec<ConstraintKind>) -> Self {
        let counts = vec![FxHashMap::default(); kinds.len()];
        FindingSet { kinds, counts }
    }

    /// Number of rules tracked.
    pub fn n_rules(&self) -> usize {
        self.kinds.len()
    }

    /// The constraint class of `rule`.
    pub fn kind(&self, rule: RuleId) -> ConstraintKind {
        self.kinds[rule as usize]
    }

    /// Add one source's mark on `(rule, tid)`. Returns `true` when this
    /// creates the finding (no source held it before).
    pub fn add_mark(&mut self, rule: RuleId, tid: Tid) -> bool {
        let c = self.counts[rule as usize].entry(tid).or_insert(0);
        *c += 1;
        *c == 1
    }

    /// Remove one source's mark on `(rule, tid)`. Returns `true` when
    /// this retires the finding (the last source released it).
    pub fn remove_mark(&mut self, rule: RuleId, tid: Tid) -> bool {
        match self.counts[rule as usize].get_mut(&tid) {
            Some(c) if *c > 1 => {
                *c -= 1;
                false
            }
            Some(_) => {
                self.counts[rule as usize].remove(&tid);
                true
            }
            None => unreachable!("finding mark count out of sync"),
        }
    }

    /// Is `tid` currently a finding of `rule`?
    pub fn is_finding(&self, rule: RuleId, tid: Tid) -> bool {
        self.counts[rule as usize].contains_key(&tid)
    }

    /// Violating tids of one rule, sorted.
    pub fn tids_of(&self, rule: RuleId) -> Vec<Tid> {
        let mut v: Vec<Tid> = self.counts[rule as usize].keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total number of `(rule, tid)` findings.
    pub fn len(&self) -> usize {
        self.counts.iter().map(FxHashMap::len).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(FxHashMap::is_empty)
    }

    /// Snapshot view: one [`Finding`] per rule with current violations,
    /// ordered by rule id.
    pub fn findings(&self) -> Vec<Finding> {
        (0..self.n_rules() as RuleId)
            .filter_map(|r| {
                let tids = self.tids_of(r);
                (!tids.is_empty()).then(|| Finding {
                    rule: r,
                    kind: self.kind(r),
                    tids,
                })
            })
            .collect()
    }

    /// All `(rule, tid)` findings, sorted — the deterministic view
    /// differential tests compare (mirrors [`Violations::marks_sorted`]).
    pub fn marks_sorted(&self) -> Vec<(RuleId, Tid)> {
        let mut v: Vec<(RuleId, Tid)> = self
            .counts
            .iter()
            .enumerate()
            .flat_map(|(r, m)| m.keys().map(move |&t| (r as RuleId, t)))
            .collect();
        v.sort_unstable();
        v
    }
}

/// The CFD-only violation set viewed through the unified surface: every
/// CFD becomes a rule of kind [`ConstraintKind::Cfd`] with a single
/// evaluation source.
impl From<&Violations> for FindingSet {
    fn from(v: &Violations) -> Self {
        let mut fs = FindingSet::new(vec![ConstraintKind::Cfd; v.n_cfds()]);
        for (c, t) in v.marks_sorted() {
            fs.add_mark(c, t);
        }
        fs
    }
}

/// The change to a finding set over one batch: added and removed
/// findings, grouped per rule and sorted (the unified counterpart of
/// [`DeltaV`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaFindings {
    /// Rules × tids that became findings.
    pub added: Vec<Finding>,
    /// Rules × tids that stopped being findings.
    pub removed: Vec<Finding>,
}

impl DeltaFindings {
    /// Number of `(rule, tid)` changes.
    pub fn len(&self) -> usize {
        self.added.iter().map(|f| f.tids.len()).sum::<usize>()
            + self.removed.iter().map(|f| f.tids.len()).sum::<usize>()
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Group settled rule-level marks (a [`DeltaV`] whose "CFD" ids are
    /// [`RuleId`]s) into per-rule findings. Rules beyond `kinds` default
    /// to [`ConstraintKind::Cfd`].
    pub fn from_rule_marks(marks: &DeltaV, kinds: &[ConstraintKind]) -> Self {
        fn group(side: &[(RuleId, Tid)], kinds: &[ConstraintKind]) -> Vec<Finding> {
            let mut out: Vec<Finding> = Vec::new();
            for &(r, t) in side {
                match out.last_mut() {
                    Some(f) if f.rule == r => f.tids.push(t),
                    _ => out.push(Finding {
                        rule: r,
                        kind: kinds
                            .get(r as usize)
                            .copied()
                            .unwrap_or(ConstraintKind::Cfd),
                        tids: vec![t],
                    }),
                }
            }
            for f in &mut out {
                f.tids.sort_unstable();
                f.tids.dedup();
            }
            out
        }
        // `DeltaV` settles sorted, so same-rule marks are adjacent.
        DeltaFindings {
            added: group(&marks.added, kinds),
            removed: group(&marks.removed, kinds),
        }
    }
}

/// A CFD-only `ΔV` viewed through the unified surface (kind `Cfd`
/// throughout). The delta is settled first, so the grouping is
/// canonical.
impl From<&DeltaV> for DeltaFindings {
    fn from(dv: &DeltaV) -> Self {
        let settled = dv.clone().sorted();
        DeltaFindings::from_rule_marks(&settled, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "a", "b", "c"], "id").unwrap()
    }

    #[test]
    fn key_compiles_to_wildcard_fd_on_tuple_id() {
        let s = schema();
        let c = Constraint::resolve(&Check::key(["a", "b"]), &s, None, 7).unwrap();
        let cfd = c.compiled_cfd().expect("key compiles");
        assert!(cfd.is_fd());
        assert_eq!(cfd.id, 7);
        assert_eq!(cfd.rhs, s.key());
        assert_eq!(c.kind(), ConstraintKind::Key);
        // The plan is a real variable-CFD plan: scan → group → probe.
        let plan = c.delta_plan();
        assert_eq!(plan.group_by(), Some(&[1u16, 2][..]));
    }

    #[test]
    fn key_over_tuple_id_is_rejected() {
        let s = schema();
        let e = Constraint::resolve(&Check::key(["id", "a"]), &s, None, 0).unwrap_err();
        assert!(matches!(e, ConstraintError::KeyCoversTupleId(_)));
    }

    #[test]
    fn completeness_compiles_to_constant_cfd() {
        let s = schema();
        let c = Constraint::resolve(&Check::complete("b"), &s, None, 3).unwrap();
        let cfd = c.compiled_cfd().expect("complete compiles");
        assert!(cfd.is_constant());
        assert_eq!(cfd.lhs, vec![2]);
        assert_eq!(cfd.rhs, s.key());
        // Probing the key attribute itself falls back to another attr.
        let c = Constraint::resolve(&Check::complete("id"), &s, None, 3).unwrap();
        let Constraint::Complete { attr, probe, .. } = c else {
            panic!("expected completeness")
        };
        assert_eq!(attr, s.key());
        assert_ne!(probe, attr);
    }

    #[test]
    fn inclusion_and_aggregate_resolve_to_group_plans() {
        let s = schema();
        let r = Schema::new("S", &["k", "x"], "k").unwrap();
        let c = Constraint::resolve(&Check::inclusion(["a"], "S", ["x"]), &s, Some(&r), 0).unwrap();
        assert_eq!(c.kind(), ConstraintKind::Inclusion);
        assert_eq!(c.delta_plan().group_by(), Some(&[1u16][..]));

        let c = Constraint::resolve(
            &Check::sum_range("c", ["a"], Some(0), Some(100)),
            &s,
            None,
            0,
        )
        .unwrap();
        assert_eq!(c.kind(), ConstraintKind::Aggregate);
        assert_eq!(c.delta_plan().group_by(), Some(&[1u16][..]));
        // Global aggregate: bare scan, still a valid plan.
        let c = Constraint::resolve(
            &Check::row_count(Vec::<String>::new(), None, Some(10)),
            &s,
            None,
            0,
        )
        .unwrap();
        assert_eq!(c.delta_plan().group_by(), None);
    }

    #[test]
    fn resolve_rejects_malformed_checks() {
        let s = schema();
        assert!(matches!(
            Constraint::resolve(&Check::key(Vec::<String>::new()), &s, None, 0),
            Err(ConstraintError::EmptyAttrs)
        ));
        assert!(matches!(
            Constraint::resolve(&Check::complete("nope"), &s, None, 0),
            Err(ConstraintError::UnknownAttribute(_))
        ));
        assert!(matches!(
            Constraint::resolve(&Check::inclusion(["a", "b"], "S", ["x"]), &s, None, 0),
            Err(ConstraintError::ArityMismatch { lhs: 2, rhs: 1 })
        ));
        assert!(matches!(
            Constraint::resolve(&Check::inclusion(["a"], "S", ["x"]), &s, None, 0),
            Err(ConstraintError::UnknownRelation(_))
        ));
        assert!(matches!(
            Constraint::resolve(&Check::row_count(["a"], None, None), &s, None, 0),
            Err(ConstraintError::NoBounds)
        ));
        assert!(matches!(
            Constraint::resolve(
                &Check::Aggregate {
                    func: AggFunc::Sum,
                    attr: None,
                    group_by: vec![],
                    lo: Some(0),
                    hi: None
                },
                &s,
                None,
                0
            ),
            Err(ConstraintError::MissingAggAttr)
        ));
    }

    #[test]
    fn finding_set_counts_sources_per_mark() {
        let mut fs = FindingSet::new(vec![ConstraintKind::Key, ConstraintKind::Inclusion]);
        assert!(fs.add_mark(0, 5)); // FD source
        assert!(!fs.add_mark(0, 5)); // residual source — same finding
        assert!(!fs.remove_mark(0, 5)); // one source left
        assert!(fs.is_finding(0, 5));
        assert!(fs.remove_mark(0, 5)); // last source retires it
        assert!(!fs.is_finding(0, 5));
        assert!(fs.is_empty());

        fs.add_mark(1, 2);
        fs.add_mark(1, 1);
        fs.add_mark(0, 9);
        assert_eq!(fs.marks_sorted(), vec![(0, 9), (1, 1), (1, 2)]);
        let snap = fs.findings();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, ConstraintKind::Key);
        assert_eq!(snap[1].tids, vec![1, 2]);
    }

    #[test]
    fn violations_and_delta_v_convert_into_unified_shapes() {
        let mut v = Violations::new(2);
        v.add(0, 3);
        v.add(1, 3);
        v.add(1, 8);
        let fs = FindingSet::from(&v);
        assert_eq!(fs.n_rules(), 2);
        assert_eq!(fs.marks_sorted(), vec![(0, 3), (1, 3), (1, 8)]);
        assert!(fs.findings().iter().all(|f| f.kind == ConstraintKind::Cfd));

        let mut dv = DeltaV::default();
        dv.add(1, 4);
        dv.add(0, 2);
        dv.add(1, 2);
        dv.remove(0, 9);
        let df = DeltaFindings::from(&dv);
        assert_eq!(df.added.len(), 2);
        assert_eq!(df.added[1].rule, 1);
        assert_eq!(df.added[1].tids, vec![2, 4]);
        assert_eq!(df.removed[0].tids, vec![9]);
        assert_eq!(df.len(), 4);
    }
}
