//! Operator-level sharing across the delta plans of a rule set.
//!
//! [`SharedPlan`] compiles every CFD's [`DeltaPlan`]
//! and merges the shareable operators:
//!
//! * **One scan.** LHS matching for *all* CFDs is decided by a single
//!   pass over the tuple's constrained attributes. Per attribute the
//!   plan keeps a posting list `value → CFDs whose plan restricts the
//!   attribute to that value`; a tuple LHS-matches a CFD exactly when it
//!   hits every one of its postings (counted with generation-stamped
//!   counters, no per-call clearing). CFDs without residual restricts
//!   match every tuple and live on a precomputed `always` list. Cost per
//!   tuple is `O(#constrained attrs + #matches)` instead of the naive
//!   `O(|Σ| · |X|)` loop — the sharing that makes thousand-CFD rule
//!   sets feasible.
//! * **One group-by.** Variable CFDs with byte-identical `GroupBy`
//!   operators form a *key group*: the detectors compute one group-key
//!   digest per key group per tuple and every member CFD reuses it.
//!
//! Residual predicates are **never** merged: two CFDs share a key group
//! only when their `GroupBy` attribute lists are identical, and each
//! CFD keeps its own restrict postings — the property suite asserts the
//! match set is exactly the per-CFD `matches_lhs` loop's.
//!
//! **Duplicate dedupe.** Rules with equal [`NormalForm`]s (the same rule
//! written twice, possibly with reordered LHS atoms) match exactly the
//! same tuples, so only the first occurrence of each class registers
//! postings; a dispatch hit on the representative expands to every class
//! member. Duplicate-free catalogs take the zero-overhead fast path.

use crate::cfd::{Cfd, CfdId, NormalForm};
use crate::delta::DeltaPlan;
use relation::{AttrId, FxHashMap, Tuple, Value};

/// Reusable per-caller scratch for [`SharedPlan::matched_by`]. Holding
/// it outside the plan keeps the plan shareable (`Arc`) across sites
/// and threads while each evaluation stays allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Restrict hits per CFD in the current generation.
    count: Vec<u32>,
    /// Generation that last touched `count[c]`.
    stamp: Vec<u32>,
    /// Current generation (0 = never used).
    generation: u32,
    /// The sorted match list handed back to the caller.
    hits: Vec<CfdId>,
    /// Duplicate-expanded match list (used only when the plan deduped).
    expanded: Vec<CfdId>,
}

/// The merged evaluation plan of a rule set. Immutable once built;
/// evaluation needs only a [`MatchScratch`].
#[derive(Debug, Clone)]
pub struct SharedPlan {
    /// The per-CFD plans the sharing was compiled from (id order).
    plans: Vec<DeltaPlan>,
    /// Per constrained attribute: constant → CFDs restricting to it.
    /// Sorted by attribute; a CFD appears once per restrict atom.
    index: Vec<(AttrId, FxHashMap<Value, Vec<CfdId>>)>,
    /// Restrict atoms each CFD needs to hit (0 ⇒ on `always`).
    needed: Vec<u32>,
    /// CFDs with no restricts, ascending — they match every tuple.
    always: Vec<CfdId>,
    /// `is_variable` per CFD.
    is_var: Vec<bool>,
    /// Distinct `GroupBy` operators: `(X in LHS order, member CFDs)`,
    /// first-seen order over ascending ids (variable CFDs only).
    key_groups: Vec<(Vec<AttrId>, Vec<CfdId>)>,
    /// Key group of each variable CFD.
    group_of: Vec<Option<usize>>,
    /// For each class representative, every member id (itself included,
    /// ascending); empty for non-representatives.
    expand: Vec<Vec<CfdId>>,
    /// Number of rules deduped onto an earlier equal-normal-form rule.
    n_deduped: usize,
}

impl SharedPlan {
    /// Compile the rule set. CFD ids must be contiguous and equal to
    /// their position (the invariant `RuleSet::new` establishes and
    /// every detector already relies on).
    pub fn new(cfds: &[Cfd]) -> SharedPlan {
        let n = cfds.len();
        debug_assert!(
            cfds.iter().enumerate().all(|(i, c)| c.id as usize == i),
            "SharedPlan requires contiguous CFD ids"
        );
        let plans: Vec<DeltaPlan> = cfds.iter().map(DeltaPlan::compile).collect();

        // Duplicate classes: rules sharing a normal form match the same
        // tuples, so only the first of each class enters the dispatch
        // structures; its hits expand to the whole class.
        let mut rep_of: Vec<CfdId> = (0..n as CfdId).collect();
        let mut expand: Vec<Vec<CfdId>> = vec![Vec::new(); n];
        let mut first: FxHashMap<NormalForm, CfdId> = FxHashMap::default();
        for (c, cfd) in cfds.iter().enumerate() {
            let rep = *first.entry(cfd.normal_form()).or_insert(c as CfdId);
            rep_of[c] = rep;
            expand[rep as usize].push(c as CfdId);
        }
        let n_deduped = n - first.len();

        let mut by_attr: FxHashMap<AttrId, FxHashMap<Value, Vec<CfdId>>> = FxHashMap::default();
        let mut needed = vec![0u32; n];
        let mut always = Vec::new();
        for (c, plan) in plans.iter().enumerate() {
            if rep_of[c] != c as CfdId {
                continue;
            }
            let mut atoms = 0u32;
            for (attr, value) in plan.restricts() {
                by_attr
                    .entry(attr)
                    .or_default()
                    .entry(value.clone())
                    .or_default()
                    .push(c as CfdId);
                atoms += 1;
            }
            needed[c] = atoms;
            if atoms == 0 {
                always.push(c as CfdId);
            }
        }
        let mut index: Vec<(AttrId, FxHashMap<Value, Vec<CfdId>>)> = by_attr.into_iter().collect();
        index.sort_unstable_by_key(|(a, _)| *a);

        let mut key_groups: Vec<(Vec<AttrId>, Vec<CfdId>)> = Vec::new();
        let mut group_of = vec![None; n];
        for (c, plan) in plans.iter().enumerate() {
            let Some(attrs) = plan.group_by() else {
                continue;
            };
            let g = match key_groups.iter().position(|(k, _)| k == attrs) {
                Some(g) => g,
                None => {
                    key_groups.push((attrs.to_vec(), Vec::new()));
                    key_groups.len() - 1
                }
            };
            key_groups[g].1.push(c as CfdId);
            group_of[c] = Some(g);
        }

        SharedPlan {
            index,
            needed,
            always,
            is_var: cfds.iter().map(Cfd::is_variable).collect(),
            key_groups,
            group_of,
            plans,
            expand,
            n_deduped,
        }
    }

    /// Number of CFDs the plan covers.
    pub fn n_cfds(&self) -> usize {
        self.plans.len()
    }

    /// The compiled per-CFD plans, in id order.
    pub fn plans(&self) -> &[DeltaPlan] {
        &self.plans
    }

    /// Is `c` a variable CFD?
    pub fn is_variable(&self, c: CfdId) -> bool {
        self.is_var[c as usize]
    }

    /// The shared `GroupBy` operators: each entry is one group-key
    /// computation serving every member CFD.
    pub fn key_groups(&self) -> &[(Vec<AttrId>, Vec<CfdId>)] {
        &self.key_groups
    }

    /// Key group of a variable CFD (`None` for constant CFDs).
    pub fn group_of(&self, c: CfdId) -> Option<usize> {
        self.group_of[c as usize]
    }

    /// Number of constrained attributes in the dispatch index.
    pub fn n_indexed_attrs(&self) -> usize {
        self.index.len()
    }

    /// Number of CFDs with no residual restricts.
    pub fn n_always(&self) -> usize {
        self.always.len()
    }

    /// Number of rules deduped onto an earlier rule with the same
    /// [`NormalForm`] — they ride their representative's postings instead
    /// of being evaluated by the dispatch pass.
    pub fn n_deduped(&self) -> usize {
        self.n_deduped
    }

    /// All CFDs whose LHS pattern matches the tuple described by
    /// `value_of`, ascending by id — exactly the set the per-CFD
    /// `matches_lhs` loop computes, via the shared dispatch pass.
    pub fn matched_by<'s, 'v>(
        &self,
        mut value_of: impl FnMut(AttrId) -> &'v Value,
        scratch: &'s mut MatchScratch,
    ) -> &'s [CfdId] {
        let n = self.plans.len();
        if scratch.count.len() < n {
            scratch.count.resize(n, 0);
            scratch.stamp.resize(n, 0);
        }
        scratch.generation = match scratch.generation.checked_add(1) {
            Some(g) => g,
            None => {
                scratch.stamp.fill(0);
                1
            }
        };
        let generation = scratch.generation;
        scratch.hits.clear();
        scratch.hits.extend_from_slice(&self.always);
        for (attr, postings) in &self.index {
            let Some(list) = postings.get(value_of(*attr)) else {
                continue;
            };
            for &c in list {
                let ci = c as usize;
                if scratch.stamp[ci] != generation {
                    scratch.stamp[ci] = generation;
                    scratch.count[ci] = 0;
                }
                scratch.count[ci] += 1;
                if scratch.count[ci] == self.needed[ci] {
                    scratch.hits.push(c);
                }
            }
        }
        if self.n_deduped == 0 {
            scratch.hits.sort_unstable();
            return &scratch.hits;
        }
        scratch.expanded.clear();
        for &rep in &scratch.hits {
            scratch
                .expanded
                .extend_from_slice(&self.expand[rep as usize]);
        }
        scratch.expanded.sort_unstable();
        &scratch.expanded
    }

    /// [`Self::matched_by`] over a materialized tuple.
    pub fn matched<'s>(&'s self, t: &Tuple, scratch: &'s mut MatchScratch) -> &'s [CfdId] {
        self.matched_by(|a| t.get(a), scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "cc", "zip", "street", "city"], "id").unwrap()
    }

    fn rules(s: &Schema) -> Vec<Cfd> {
        vec![
            // Shared LHS [cc, zip], different residual constants.
            Cfd::from_names(
                0,
                s,
                &[("cc", Some(Value::int(44))), ("zip", None)],
                ("street", None),
            )
            .unwrap(),
            Cfd::from_names(
                1,
                s,
                &[("cc", Some(Value::int(1))), ("zip", None)],
                ("street", None),
            )
            .unwrap(),
            // Pure FD: no restricts, same group-by as above.
            Cfd::from_names(2, s, &[("cc", None), ("zip", None)], ("street", None)).unwrap(),
            // Different LHS order ⇒ different group-by operator.
            Cfd::from_names(3, s, &[("zip", None), ("cc", None)], ("street", None)).unwrap(),
            // Constant CFD.
            Cfd::from_names(
                4,
                s,
                &[("cc", Some(Value::int(44)))],
                ("city", Some(Value::str("EDI"))),
            )
            .unwrap(),
        ]
    }

    fn tuple(cc: i64, zip: &str) -> Tuple {
        Tuple::new(
            0,
            vec![
                Value::int(0),
                Value::int(cc),
                Value::str(zip),
                Value::str("s"),
                Value::str("c"),
            ],
        )
    }

    #[test]
    fn dispatch_matches_the_per_cfd_loop() {
        let s = schema();
        let cfds = rules(&s);
        let plan = SharedPlan::new(&cfds);
        let mut scratch = MatchScratch::default();
        for (cc, zip) in [(44, "a"), (1, "a"), (7, "b"), (44, "b")] {
            let t = tuple(cc, zip);
            let want: Vec<CfdId> = cfds
                .iter()
                .filter(|c| c.matches_lhs(&t))
                .map(|c| c.id)
                .collect();
            assert_eq!(plan.matched(&t, &mut scratch), &want[..], "cc={cc}");
        }
    }

    #[test]
    fn key_groups_merge_only_identical_group_bys() {
        let s = schema();
        let cfds = rules(&s);
        let plan = SharedPlan::new(&cfds);
        // [cc, zip] is shared by CFDs 0, 1, 2; [zip, cc] is its own
        // group; the constant CFD has none.
        assert_eq!(plan.key_groups().len(), 2);
        assert_eq!(plan.key_groups()[0], (vec![1, 2], vec![0, 1, 2]));
        assert_eq!(plan.key_groups()[1], (vec![2, 1], vec![3]));
        assert_eq!(plan.group_of(0), Some(0));
        assert_eq!(plan.group_of(3), Some(1));
        assert_eq!(plan.group_of(4), None);
        for (attrs, members) in plan.key_groups() {
            for &c in members {
                assert_eq!(
                    cfds[c as usize].lhs, *attrs,
                    "a key group must only merge byte-identical GroupBy operators"
                );
            }
        }
    }

    #[test]
    fn duplicate_rules_ride_their_representative() {
        let s = schema();
        let mut cfds = rules(&s);
        // Exact duplicate of CFD 0 with reordered LHS atoms, and a
        // byte-identical duplicate of the constant CFD 4.
        cfds.push(
            Cfd::from_names(
                5,
                &s,
                &[("zip", None), ("cc", Some(Value::int(44)))],
                ("street", None),
            )
            .unwrap(),
        );
        cfds.push(
            Cfd::from_names(
                6,
                &s,
                &[("cc", Some(Value::int(44)))],
                ("city", Some(Value::str("EDI"))),
            )
            .unwrap(),
        );
        let plan = SharedPlan::new(&cfds);
        // Rule 3 of the base set is already rule 2 modulo LHS order, so
        // the two appended duplicates bring the count to three.
        assert_eq!(plan.n_deduped(), 3);
        let mut scratch = MatchScratch::default();
        for (cc, zip) in [(44, "a"), (1, "a"), (7, "b"), (44, "b")] {
            let t = tuple(cc, zip);
            let want: Vec<CfdId> = cfds
                .iter()
                .filter(|c| c.matches_lhs(&t))
                .map(|c| c.id)
                .collect();
            assert_eq!(plan.matched(&t, &mut scratch), &want[..], "cc={cc}");
        }
        // Duplicate-free plans report zero dedupe (fast path).
        assert_eq!(SharedPlan::new(&rules(&s)[..3]).n_deduped(), 0);
    }

    #[test]
    fn scratch_generations_never_leak_between_calls() {
        let s = schema();
        let cfds = rules(&s);
        let plan = SharedPlan::new(&cfds);
        let mut scratch = MatchScratch::default();
        // Force many generations, interleaving hit/miss tuples: stale
        // counters from earlier generations must never complete a match.
        for round in 0..1000 {
            let t = if round % 2 == 0 {
                tuple(44, "x")
            } else {
                tuple(-1, "x")
            };
            let want: Vec<CfdId> = cfds
                .iter()
                .filter(|c| c.matches_lhs(&t))
                .map(|c| c.id)
                .collect();
            assert_eq!(plan.matched(&t, &mut scratch), &want[..]);
        }
        // Generation wrap: restart the counter space explicitly.
        scratch.generation = u32::MAX - 1;
        for _ in 0..4 {
            let t = tuple(44, "x");
            let want: Vec<CfdId> = cfds
                .iter()
                .filter(|c| c.matches_lhs(&t))
                .map(|c| c.id)
                .collect();
            assert_eq!(plan.matched(&t, &mut scratch), &want[..]);
        }
    }
}
