//! A miniature relational-algebra executor.
//!
//! Executes the detection plans behind the "two SQL queries" of §2.3
//! ([`crate::sqlgen`]) directly on in-memory [`Relation`]s: selection,
//! projection, grouping with a `COUNT(DISTINCT …) > 1` having-filter, and
//! semijoin back to the base — exactly the operator shapes `Q_C`/`Q_V`
//! need. It exists as a second, independently-implemented oracle (the
//! tests cross-check it against [`crate::naive`]) and as the substrate for
//! downstream users who want plan-shaped detection rather than the
//! hand-fused loops of `naive`.

use crate::cfd::Cfd;
use crate::pattern::PatternValue;
use crate::violation::Violations;
use relation::{
    AttrId, FxHashMap, FxHashSet, Relation, SmallVec, Sym, Tid, Tuple, Value, ValuePool,
};

/// A selection predicate: conjunction of `attr = const` atoms.
#[derive(Debug, Clone, Default)]
pub struct EqSelect {
    atoms: Vec<(AttrId, Value)>,
}

impl EqSelect {
    /// Selection from the constant atoms of a CFD's LHS pattern.
    pub fn from_cfd(cfd: &Cfd) -> Self {
        EqSelect {
            atoms: cfd.constant_atoms(),
        }
    }

    /// Does the tuple satisfy all atoms?
    pub fn eval(&self, t: &Tuple) -> bool {
        self.atoms.iter().all(|(a, v)| t.get(*a) == v)
    }
}

/// Streaming selection: tuples satisfying the predicate (materialized —
/// the columnar plans below scan without materializing).
pub fn select<'a>(d: &'a Relation, pred: &'a EqSelect) -> impl Iterator<Item = Tuple> + 'a {
    d.iter().filter(move |t| pred.eval(t))
}

/// `GROUP BY keys HAVING COUNT(DISTINCT dep) > 1`, returning for each
/// surviving group its member tids. Group keys and the distinct-dep check
/// run on interned symbols (one pass-local dictionary), so grouping never
/// clones attribute values.
pub fn group_having_multiple_dep(
    tuples: impl Iterator<Item = impl std::borrow::Borrow<Tuple>>,
    keys: &[AttrId],
    dep: AttrId,
) -> Vec<Vec<Tid>> {
    struct G {
        tids: Vec<Tid>,
        first: Sym,
        mixed: bool,
    }
    let mut pool = ValuePool::new();
    let mut groups: FxHashMap<SmallVec<Sym, 4>, G> = FxHashMap::default();
    for t in tuples {
        let t = t.borrow();
        let key: SmallVec<Sym, 4> = t.iter_at(keys).map(|v| pool.acquire(v)).collect();
        let b = pool.acquire(t.get(dep));
        let g = groups.entry(key).or_insert(G {
            tids: Vec::new(),
            first: b,
            mixed: false,
        });
        g.tids.push(t.tid);
        if g.first != b {
            g.mixed = true;
        }
    }
    groups
        .into_values()
        .filter(|g| g.mixed)
        .map(|g| g.tids)
        .collect()
}

/// Execute the constant-query plan `Q_C` for one constant CFD — a single
/// columnar scan: the selection atoms and the RHS constant resolve to the
/// relation's dictionary symbols once, then every row check is integer
/// comparisons over column slices.
pub fn run_constant(cfd: &Cfd, d: &Relation) -> Vec<Tid> {
    let b = match &cfd.rhs_pattern {
        PatternValue::Const(v) => v,
        PatternValue::Wildcard => return Vec::new(),
    };
    let Some(atoms) = crate::naive::atom_syms(cfd, d) else {
        return Vec::new();
    };
    let store = d.store();
    let rhs_sym = d.pool().lookup(b); // None ⇒ every matching row violates
    let rhs_col = store.col(cfd.rhs);
    store
        .rows()
        .filter(|&(_, row)| {
            atoms.iter().all(|&(a, s)| store.col(a)[row as usize] == s)
                && Some(rhs_col[row as usize]) != rhs_sym
        })
        .map(|(tid, _)| tid)
        .collect()
}

/// Execute the variable-query plan `Q_V` for one variable CFD — columnar
/// `GROUP BY` over symbol slices ([`group_having_multiple_dep_cols`]).
pub fn run_variable(cfd: &Cfd, d: &Relation) -> Vec<Tid> {
    if cfd.is_constant() {
        return Vec::new();
    }
    let Some(atoms) = crate::naive::atom_syms(cfd, d) else {
        return Vec::new();
    };
    let store = d.store();
    group_having_multiple_dep_cols(
        d,
        |row| atoms.iter().all(|&(a, s)| store.col(a)[row as usize] == s),
        &cfd.lhs,
        cfd.rhs,
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Columnar `GROUP BY keys HAVING COUNT(DISTINCT dep) > 1`: group the rows
/// passing `filter` directly over the relation's column slices — keys are
/// the rows' dictionary symbols, so no value is hashed or cloned.
pub fn group_having_multiple_dep_cols(
    d: &Relation,
    filter: impl Fn(u32) -> bool,
    keys: &[AttrId],
    dep: AttrId,
) -> Vec<Vec<Tid>> {
    struct G {
        tids: Vec<Tid>,
        first: Sym,
        mixed: bool,
    }
    let store = d.store();
    let dep_col = store.col(dep);
    let mut groups: FxHashMap<SmallVec<Sym, 4>, G> = FxHashMap::default();
    for (tid, row) in store.rows() {
        if !filter(row) {
            continue;
        }
        let key: SmallVec<Sym, 4> = keys.iter().map(|&a| store.col(a)[row as usize]).collect();
        let b = dep_col[row as usize];
        let g = groups.entry(key).or_insert(G {
            tids: Vec::new(),
            first: b,
            mixed: false,
        });
        g.tids.push(tid);
        if g.first != b {
            g.mixed = true;
        }
    }
    groups
        .into_values()
        .filter(|g| g.mixed)
        .map(|g| g.tids)
        .collect()
}

/// Full plan-based detection: the algebraic equivalent of running the two
/// generated SQL queries and unioning their answers per CFD.
pub fn detect(cfds: &[Cfd], d: &Relation) -> Violations {
    let mut v = Violations::new(cfds.len());
    for cfd in cfds {
        let tids = if cfd.is_constant() {
            run_constant(cfd, d)
        } else {
            run_variable(cfd, d)
        };
        for t in tids {
            v.add(cfd.id, t);
        }
    }
    v
}

/// Semijoin helper: restrict `d` to the given tid set (the outer `JOIN …
/// ON` of `Q_V`). Exposed for plan-shaped consumers.
pub fn semijoin_tids<'a>(
    d: &'a Relation,
    tids: &'a FxHashSet<Tid>,
) -> impl Iterator<Item = Tuple> + 'a {
    d.iter().filter(move |t| tids.contains(&t.tid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;
    use std::sync::Arc;

    fn emp() -> (Arc<Schema>, Relation, Vec<Cfd>) {
        let s = Schema::new("EMP", &["id", "CC", "AC", "zip", "street", "city"], "id").unwrap();
        let rows: Vec<(i64, i64, &str, &str, &str)> = vec![
            (44, 131, "EH4 8LE", "Mayfield", "NYC"),
            (44, 131, "EH2 4HF", "Preston", "EDI"),
            (44, 131, "EH4 8LE", "Mayfield", "EDI"),
            (44, 131, "EH4 8LE", "Mayfield", "EDI"),
            (44, 131, "EH4 8LE", "Crichton", "EDI"),
        ];
        let mut d = Relation::new(s.clone());
        for (i, (cc, ac, zip, street, city)) in rows.into_iter().enumerate() {
            d.insert(Tuple::new(
                (i + 1) as Tid,
                vec![
                    Value::int((i + 1) as i64),
                    Value::int(cc),
                    Value::int(ac),
                    Value::str(zip),
                    Value::str(street),
                    Value::str(city),
                ],
            ))
            .unwrap();
        }
        let cfds = vec![
            Cfd::from_names(
                0,
                &s,
                &[("CC", Some(Value::int(44))), ("zip", None)],
                ("street", None),
            )
            .unwrap(),
            Cfd::from_names(
                1,
                &s,
                &[("CC", Some(Value::int(44))), ("AC", Some(Value::int(131)))],
                ("city", Some(Value::str("EDI"))),
            )
            .unwrap(),
        ];
        (s, d, cfds)
    }

    #[test]
    fn plan_matches_naive_on_fig1() {
        let (_, d, cfds) = emp();
        let a = detect(&cfds, &d);
        let b = crate::naive::detect(&cfds, &d);
        assert_eq!(a.marks_sorted(), b.marks_sorted());
        assert_eq!(a.tids_sorted(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn run_constant_finds_single_tuple_violations() {
        let (_, d, cfds) = emp();
        let mut tids = run_constant(&cfds[1], &d);
        tids.sort_unstable();
        assert_eq!(tids, vec![1]);
        assert!(
            run_constant(&cfds[0], &d).is_empty(),
            "variable CFD → Q_C empty"
        );
    }

    #[test]
    fn run_variable_groups_and_filters() {
        let (_, d, cfds) = emp();
        let mut tids = run_variable(&cfds[0], &d);
        tids.sort_unstable();
        assert_eq!(tids, vec![1, 3, 4, 5]);
        assert!(
            run_variable(&cfds[1], &d).is_empty(),
            "constant CFD → Q_V empty"
        );
    }

    #[test]
    fn select_filters_by_atoms() {
        let (_, d, cfds) = emp();
        let pred = EqSelect::from_cfd(&cfds[1]);
        assert_eq!(select(&d, &pred).count(), 5);
        let none = EqSelect {
            atoms: vec![(1, Value::int(99))],
        };
        assert_eq!(select(&d, &none).count(), 0);
    }

    #[test]
    fn group_having_counts_distinct() {
        let (_, d, _) = emp();
        // Group by zip, dep = street: EH4 8LE group has two streets.
        let groups = group_having_multiple_dep(d.iter(), &[3], 4);
        assert_eq!(groups.len(), 1);
        let mut tids = groups[0].clone();
        tids.sort_unstable();
        assert_eq!(tids, vec![1, 3, 4, 5]);
    }

    #[test]
    fn semijoin_restricts() {
        let (_, d, _) = emp();
        let keep: FxHashSet<Tid> = [2u64, 5].into_iter().collect();
        let got: Vec<Tid> = semijoin_tids(&d, &keep).map(|t| t.tid).collect();
        assert_eq!(got, vec![2, 5]);
    }
}
