//! Conditional functional dependencies (CFDs) and violation semantics (§2).
//!
//! A CFD `φ = (X → B, t_p)` pairs a functional dependency with a *pattern
//! tuple* over `X ∪ {B}` whose entries are either constants or the unnamed
//! variable `_`. Traditional FDs are the special case where the pattern is
//! all wildcards.
//!
//! This crate provides:
//!
//! * [`pattern`] — pattern values and the match operator `≍`,
//! * [`cfd`] — the [`Cfd`] type, tableau form and normalization,
//! * [`delta`] — the per-CFD delta-plan operator IR (scan / group /
//!   restrict / probe) with a columnar semi-naive evaluator,
//! * [`constraint`] — the non-CFD constraint vocabulary (keys,
//!   completeness, inclusion dependencies, aggregates) compiled onto the
//!   same delta plans, plus the unified [`Finding`] reporting surface,
//! * [`share`] — operator-level sharing across a rule set's plans: one
//!   dispatch scan and one group-key pass serving many CFDs,
//! * [`parse`] — a small text format (`[CC=44, zip] -> [street]`),
//! * [`analysis`] — static analysis of a catalog: satisfiability,
//!   implication, minimal cover, and the mark-preserving prune plan,
//! * [`violation`] — the violation containers `V(Σ, D)` and `ΔV`,
//! * [`naive`] — a centralized batch detector used as the ground-truth
//!   oracle in tests and as the reference for the "two SQL queries suffice"
//!   remark of §1.

pub mod algebra;
pub mod analysis;
pub mod cfd;
pub mod constraint;
pub mod delta;
pub mod naive;
pub mod parse;
pub mod pattern;
pub mod report;
pub mod share;
pub mod sqlgen;
pub mod violation;

pub use crate::analysis::{
    AnalysisConfig, CatalogAnalysis, CoverCertificate, Domain, Domains, Implication, PrunePlan, Sat,
};
pub use crate::cfd::{Cfd, CfdId, NormalForm, Tableau};
pub use crate::constraint::{
    AggFunc, Check, Constraint, ConstraintError, ConstraintKind, DeltaFindings, Finding,
    FindingSet, RuleId,
};
pub use crate::delta::{DeltaOp, DeltaPlan};
pub use crate::parse::{parse_catalog, ParsedCatalog};
pub use crate::pattern::PatternValue;
pub use crate::share::{MatchScratch, SharedPlan};
pub use crate::violation::{DeltaV, Violations};

/// Source location of a catalog diagnostic: 1-based line and column plus
/// the byte length of the offending fragment. Attached to parse errors by
/// [`parse::parse_cfds`] / [`parse::parse_catalog`] so tools like
/// `cfdlint` can point at the exact input span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
    /// Byte length of the offending fragment (at least 1).
    pub len: usize,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// Errors produced when building or parsing CFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfdError {
    /// LHS/RHS attribute missing from the schema.
    UnknownAttribute(String),
    /// Pattern arity does not match `X ∪ {B}`.
    PatternArity { expected: usize, got: usize },
    /// Text form could not be parsed.
    Parse(String),
    /// The RHS attribute also appears on the LHS.
    RhsInLhs(String),
    /// A CFD must have at least one LHS attribute.
    EmptyLhs,
    /// An error located at a source span of the catalog text.
    At {
        /// Where in the input the error sits.
        span: Span,
        /// The underlying diagnostic.
        inner: Box<CfdError>,
    },
}

impl CfdError {
    /// Attach a source span (idempotent: an already-located error keeps
    /// its innermost, most precise span).
    pub fn at(self, span: Span) -> CfdError {
        match self {
            CfdError::At { .. } => self,
            inner => CfdError::At {
                span,
                inner: Box::new(inner),
            },
        }
    }

    /// The source span, if this diagnostic carries one.
    pub fn span(&self) -> Option<Span> {
        match self {
            CfdError::At { span, .. } => Some(*span),
            _ => None,
        }
    }
}

impl std::fmt::Display for CfdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfdError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            CfdError::PatternArity { expected, got } => {
                write!(f, "pattern arity {got}, expected {expected}")
            }
            CfdError::Parse(s) => write!(f, "parse error: {s}"),
            CfdError::RhsInLhs(a) => write!(f, "RHS attribute `{a}` also on LHS"),
            CfdError::EmptyLhs => write!(f, "CFD with empty LHS"),
            CfdError::At { span, inner } => write!(f, "{span}: {inner}"),
        }
    }
}

impl std::error::Error for CfdError {}
