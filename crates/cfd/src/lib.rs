//! Conditional functional dependencies (CFDs) and violation semantics (§2).
//!
//! A CFD `φ = (X → B, t_p)` pairs a functional dependency with a *pattern
//! tuple* over `X ∪ {B}` whose entries are either constants or the unnamed
//! variable `_`. Traditional FDs are the special case where the pattern is
//! all wildcards.
//!
//! This crate provides:
//!
//! * [`pattern`] — pattern values and the match operator `≍`,
//! * [`cfd`] — the [`Cfd`] type, tableau form and normalization,
//! * [`delta`] — the per-CFD delta-plan operator IR (scan / group /
//!   restrict / probe) with a columnar semi-naive evaluator,
//! * [`share`] — operator-level sharing across a rule set's plans: one
//!   dispatch scan and one group-key pass serving many CFDs,
//! * [`parse`] — a small text format (`[CC=44, zip] -> [street]`),
//! * [`violation`] — the violation containers `V(Σ, D)` and `ΔV`,
//! * [`naive`] — a centralized batch detector used as the ground-truth
//!   oracle in tests and as the reference for the "two SQL queries suffice"
//!   remark of §1.

pub mod algebra;
pub mod cfd;
pub mod delta;
pub mod naive;
pub mod parse;
pub mod pattern;
pub mod report;
pub mod share;
pub mod sqlgen;
pub mod violation;

pub use crate::cfd::{Cfd, CfdId, Tableau};
pub use crate::delta::{DeltaOp, DeltaPlan};
pub use crate::pattern::PatternValue;
pub use crate::share::{MatchScratch, SharedPlan};
pub use crate::violation::{DeltaV, Violations};

/// Errors produced when building or parsing CFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfdError {
    /// LHS/RHS attribute missing from the schema.
    UnknownAttribute(String),
    /// Pattern arity does not match `X ∪ {B}`.
    PatternArity { expected: usize, got: usize },
    /// Text form could not be parsed.
    Parse(String),
    /// The RHS attribute also appears on the LHS.
    RhsInLhs(String),
    /// A CFD must have at least one LHS attribute.
    EmptyLhs,
}

impl std::fmt::Display for CfdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfdError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            CfdError::PatternArity { expected, got } => {
                write!(f, "pattern arity {got}, expected {expected}")
            }
            CfdError::Parse(s) => write!(f, "parse error: {s}"),
            CfdError::RhsInLhs(a) => write!(f, "RHS attribute `{a}` also on LHS"),
            CfdError::EmptyLhs => write!(f, "CFD with empty LHS"),
        }
    }
}

impl std::error::Error for CfdError {}
