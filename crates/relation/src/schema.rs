//! Relation schemas.
//!
//! A [`Schema`] is an ordered list of named [`Attribute`]s with a designated
//! key attribute (the paper assumes every vertical fragment carries the key;
//! we model the key explicitly so partitioners can enforce that).

use crate::RelError;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within its schema.
pub type AttrId = u16;

/// A named, typed-by-convention attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within the schema.
    pub name: String,
}

impl Attribute {
    /// New attribute with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute { name: name.into() }
    }
}

/// A relation schema: name, attributes, and the key attribute.
///
/// Schemas are immutable once built and shared via `Arc` between fragments,
/// detectors and workload generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
    key: AttrId,
}

impl Schema {
    /// Build a schema. `key` names the key attribute and must be present.
    pub fn new(
        name: impl Into<String>,
        attr_names: &[&str],
        key: &str,
    ) -> Result<Arc<Self>, RelError> {
        let attrs: Vec<Attribute> = attr_names.iter().map(|n| Attribute::new(*n)).collect();
        let key_id = attrs
            .iter()
            .position(|a| a.name == key)
            .ok_or_else(|| RelError::UnknownAttribute(key.to_string()))?;
        // Reject duplicate attribute names.
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelError::UnknownAttribute(format!(
                    "duplicate attribute `{}`",
                    a.name
                )));
            }
        }
        Ok(Arc::new(Schema {
            name: name.into(),
            attrs,
            key: key_id as AttrId,
        }))
    }

    /// Schema (relation) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The key attribute id.
    pub fn key(&self) -> AttrId {
        self.key
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute id for `name`.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, RelError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| i as AttrId)
            .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
    }

    /// Attribute ids for several names (order preserved).
    pub fn attr_ids(&self, names: &[&str]) -> Result<Vec<AttrId>, RelError> {
        names.iter().map(|n| self.attr_id(n)).collect()
    }

    /// Attribute name for `id` (panics on out-of-range, which indicates a
    /// programming error rather than bad data).
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id as usize].name
    }

    /// All attribute ids.
    pub fn all_attr_ids(&self) -> Vec<AttrId> {
        (0..self.attrs.len() as AttrId).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == self.key as usize {
                write!(f, "*{}", a.name)?;
            } else {
                write!(f, "{}", a.name)?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Arc<Schema> {
        Schema::new("EMP", &["id", "name", "city", "zip"], "id").unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = emp();
        assert_eq!(s.attr_id("id").unwrap(), 0);
        assert_eq!(s.attr_id("zip").unwrap(), 3);
        assert_eq!(s.attr_name(2), "city");
        assert_eq!(s.key(), 0);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn unknown_attribute_is_error() {
        let s = emp();
        assert!(matches!(
            s.attr_id("salary"),
            Err(RelError::UnknownAttribute(_))
        ));
        assert!(Schema::new("R", &["a", "b"], "c").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(Schema::new("R", &["a", "b", "a"], "a").is_err());
    }

    #[test]
    fn display_marks_key() {
        assert_eq!(emp().to_string(), "EMP(*id, name, city, zip)");
    }

    #[test]
    fn attr_ids_preserves_order() {
        let s = emp();
        assert_eq!(s.attr_ids(&["zip", "name"]).unwrap(), vec![3, 1]);
    }
}
