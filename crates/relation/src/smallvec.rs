//! A tiny, dependency-free inline vector.
//!
//! The detection hot paths build many short fixed-arity keys — eqid vectors
//! for the non-base HEVs, interned-symbol group keys for the batch
//! detectors. Keying hash maps on `Box<[T]>`/`Vec<T>` pays one heap
//! allocation per key *construction*, which the paper's `O(|ΔD| + |ΔV|)`
//! per-probe cost analysis cannot afford. [`SmallVec<T, N>`] stores up to
//! `N` elements inline (CFD arities are almost always ≤ 4) and spills to a
//! heap vector only beyond that.
//!
//! The type implements `Borrow<[T]>`, `Hash` and `Eq` consistently with the
//! slice type, so a `FxHashMap<SmallVec<T, N>, V>` can be probed with a
//! plain `&[T]` — lookups never allocate, and inserts of short keys don't
//! either.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// An inline-first vector of `Copy` elements; spills to the heap past `N`.
#[derive(Debug, Clone)]
pub struct SmallVec<T, const N: usize> {
    /// Total number of elements (inline or spilled).
    len: u32,
    /// Inline storage, valid for `..len` while `len <= N`.
    inline: [T; N],
    /// Heap storage holding *all* elements once `len > N`.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Empty vector (no allocation).
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Copy a slice into a fresh vector (inline when it fits).
    pub fn from_slice(s: &[T]) -> Self {
        let mut v = SmallVec::new();
        for &x in s {
            v.push(x);
        }
        v
    }

    /// Append one element, spilling to the heap at the `N+1`-st.
    pub fn push(&mut self, x: T) {
        let l = self.len as usize;
        if l < N {
            self.inline[l] = x;
        } else {
            if l == N {
                self.spill.reserve(N + 4);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(x);
        }
        self.len += 1;
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len as usize <= N {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the vector empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does the vector live entirely in its inline buffer?
    pub fn is_inline(&self) -> bool {
        self.len as usize <= N
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

// Eq/Hash/Borrow agree with the slice type, so `FxHashMap<SmallVec<T, N>, V>`
// can be probed with `&[T]` — the `Borrow` contract requires exactly this
// consistency.
impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default, const N: usize> Borrow<[T]> for SmallVec<T, N> {
    fn borrow(&self) -> &[T] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::FxHashMap;
    use std::hash::BuildHasher;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<u64, 4> = SmallVec::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn from_slice_and_iterator_round_trip() {
        let v: SmallVec<u32, 2> = SmallVec::from_slice(&[7, 8, 9]);
        assert_eq!(&*v, &[7, 8, 9]);
        let w: SmallVec<u32, 2> = [7u32, 8, 9].into_iter().collect();
        assert_eq!(v, w);
    }

    #[test]
    fn hash_agrees_with_slice() {
        // The Borrow contract: SmallVec and its slice must hash identically
        // under the same BuildHasher.
        let build = crate::fx::FxBuildHasher::default();
        for s in [&[][..], &[1u64][..], &[1, 2, 3, 4, 5][..]] {
            let v: SmallVec<u64, 4> = SmallVec::from_slice(s);
            assert_eq!(build.hash_one(&v), build.hash_one(s));
        }
    }

    #[test]
    fn map_probed_by_slice_without_alloc() {
        let mut m: FxHashMap<SmallVec<u64, 4>, &str> = FxHashMap::default();
        m.insert(SmallVec::from_slice(&[1, 2]), "short");
        m.insert(SmallVec::from_slice(&[1, 2, 3, 4, 5]), "long");
        assert_eq!(m.get([1u64, 2].as_slice()), Some(&"short"));
        assert_eq!(m.get([1u64, 2, 3, 4, 5].as_slice()), Some(&"long"));
        assert_eq!(m.get([9u64].as_slice()), None);
        assert!(m.remove([1u64, 2].as_slice()).is_some());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slice_view_agrees_across_storage_modes() {
        // Same logical contents in different storage modes: N=8 stays
        // inline, N=2 spills. Eq is per-type (same N ⇒ same mode for the
        // same length), so the cross-mode comparison goes via the slice
        // view — which is also what Borrow-based map probing sees.
        let inline: SmallVec<u64, 8> = SmallVec::from_slice(&[1, 2, 3]);
        let spilled: SmallVec<u64, 2> = SmallVec::from_slice(&[1, 2, 3]);
        assert!(inline.is_inline() && !spilled.is_inline());
        assert_eq!(inline.as_slice(), spilled.as_slice());
        // Within one type, equality follows contents.
        let rebuilt: SmallVec<u64, 2> = [1u64, 2, 3].into_iter().collect();
        assert_eq!(spilled, rebuilt);
        assert_ne!(spilled, SmallVec::<u64, 2>::from_slice(&[1, 2, 4]));
    }
}
