//! Dictionary encoding of attribute values.
//!
//! The detectors' complexity argument (`O(|ΔD| + |ΔV|)` per §4) rests on
//! constant-time index probes, but probing on full [`Value`]s makes every
//! probe hash — and every index entry clone — variable-length string
//! payloads. A [`ValuePool`] interns each distinct value exactly once and
//! hands out a fixed-size symbol ([`Sym`], a `u32`); everything downstream
//! (HEV keys, grouping keys, digests, wire accounting) can then operate on
//! integer symbols:
//!
//! * `v == w  ⟺  pool.acquire(v) == pool.acquire(w)` while both are live,
//! * resolve-back is an O(1) slot read ([`ValuePool::resolve`]),
//! * the pool is reference-counted like the HEVs, so deletions
//!   garbage-collect dictionary entries and symbol ids are reused —
//!   the dictionary stays proportional to the live database.
//!
//! [`SymTuple`] is the dictionary-encoded tuple representation: one symbol
//! per attribute in an `Arc<[Sym]>`, so projections and `t[X]` extraction
//! are copy-free symbol reads instead of per-attribute value clones.

use crate::fx::FxHashMap;
use crate::schema::AttrId;
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// An interned-value symbol: index into its owning [`ValuePool`].
pub type Sym = u32;

/// One dictionary slot. The value payload is stored exactly once and
/// shared with the reverse-map key through an `Arc` (`None` marks a freed,
/// recyclable slot).
#[derive(Debug, Clone)]
struct Slot {
    value: Option<Arc<Value>>,
    refs: u32,
}

/// A reference-counted dictionary `Value ↔ Sym`.
///
/// `acquire` takes a reference on the value's symbol (allocating a slot on
/// first sight), `release` drops one and garbage-collects the slot at zero;
/// freed symbol ids are recycled for later values. Resolve-back is an O(1)
/// slot read.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    /// `Value → Sym`; the `Arc` key shares its payload with the slot, so
    /// each distinct live value is heap-allocated once. Probing with a
    /// plain `&Value` works through `Arc<Value>: Borrow<Value>`.
    map: FxHashMap<Arc<Value>, Sym>,
    slots: Vec<Slot>,
    free: Vec<Sym>,
}

impl ValuePool {
    /// Fresh empty pool.
    pub fn new() -> Self {
        ValuePool::default()
    }

    /// Symbol for `v`, taking one reference (allocates a slot for values
    /// never seen — the only place a value is ever cloned).
    pub fn acquire(&mut self, v: &Value) -> Sym {
        if let Some(&s) = self.map.get(v) {
            self.slots[s as usize].refs += 1;
            return s;
        }
        let shared = Arc::new(v.clone());
        let slot = Slot {
            value: Some(Arc::clone(&shared)),
            refs: 1,
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = slot;
                s
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as Sym
            }
        };
        self.map.insert(shared, s);
        s
    }

    /// Symbol for `v` without touching reference counts (pure lookup).
    pub fn lookup(&self, v: &Value) -> Option<Sym> {
        self.map.get(v).copied()
    }

    /// The value behind a live symbol (O(1) slot read).
    ///
    /// # Panics
    /// Panics when `s` has no live slot — callers must only resolve
    /// symbols they hold references on.
    pub fn resolve(&self, s: Sym) -> &Value {
        let slot = &self.slots[s as usize];
        assert!(slot.refs > 0, "resolve of a dead symbol {s}");
        slot.value.as_deref().expect("live slot holds a value")
    }

    /// Live reference count of a symbol (0 for freed slots) — used by the
    /// property tests.
    pub fn refs(&self, s: Sym) -> u32 {
        self.slots.get(s as usize).map_or(0, |slot| slot.refs)
    }

    /// Release one reference on `s`, garbage-collecting the slot (and
    /// recycling the id) at zero.
    ///
    /// # Panics
    /// Panics when `s` has no live reference — that indicates the caller's
    /// acquire/release bookkeeping is out of sync.
    pub fn release(&mut self, s: Sym) {
        let slot = &mut self.slots[s as usize];
        assert!(slot.refs > 0, "release of a dead symbol {s}");
        slot.refs -= 1;
        if slot.refs == 0 {
            let v = slot.value.take().expect("live slot holds a value");
            self.map.remove(&*v);
            self.free.push(s);
        }
    }

    /// Dictionary-encode a tuple, acquiring one reference per attribute
    /// value.
    pub fn encode(&mut self, t: &Tuple) -> SymTuple {
        SymTuple {
            tid: t.tid,
            syms: t.values.iter().map(|v| self.acquire(v)).collect(),
        }
    }

    /// Release the references held by an encoded tuple.
    pub fn release_tuple(&mut self, t: &SymTuple) {
        for &s in t.syms.iter() {
            self.release(s);
        }
    }

    /// Number of distinct live values in the dictionary.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total slots ever allocated (live + recyclable) — the high-water
    /// mark of distinct simultaneous values.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A dictionary-encoded tuple: one [`Sym`] per attribute, positionally
/// aligned with the owning schema. Cloning shares the symbol buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymTuple {
    /// Unique tuple id (same id as the source [`Tuple`]).
    pub tid: Tid,
    /// Interned symbols, one per attribute.
    pub syms: Arc<[Sym]>,
}

impl SymTuple {
    /// Symbol at attribute `a` (positional).
    #[inline]
    pub fn get(&self, a: AttrId) -> Sym {
        self.syms[a as usize]
    }

    /// Symbols at `attrs` — the dictionary-encoded `t[X]`, copy-free.
    #[inline]
    pub fn syms_at<'a>(&'a self, attrs: &'a [AttrId]) -> impl Iterator<Item = Sym> + 'a {
        attrs.iter().map(|&a| self.syms[a as usize])
    }

    /// Arity of the encoded tuple.
    pub fn arity(&self) -> usize {
        self.syms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_idempotent_on_symbol() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::str("EDI"));
        let b = p.acquire(&Value::str("EDI"));
        let c = p.acquire(&Value::int(44));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
        assert_eq!(p.refs(a), 2);
        assert_eq!(p.resolve(a), &Value::str("EDI"));
        assert_eq!(p.resolve(c), &Value::int(44));
        assert_eq!(p.lookup(&Value::str("EDI")), Some(a));
        assert_eq!(p.lookup(&Value::str("NYC")), None);
    }

    #[test]
    fn release_garbage_collects_and_recycles_ids() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::str("x"));
        p.acquire(&Value::str("x"));
        p.release(a);
        assert_eq!(p.lookup(&Value::str("x")), Some(a), "one ref remains");
        p.release(a);
        assert_eq!(p.lookup(&Value::str("x")), None, "slot collected");
        assert!(p.is_empty());
        // The freed id is recycled for the next distinct value.
        let b = p.acquire(&Value::str("y"));
        assert_eq!(b, a, "free list reuses slot ids");
        assert_eq!(p.capacity(), 1, "no new slot allocated");
    }

    #[test]
    #[should_panic(expected = "dead symbol")]
    fn release_of_dead_symbol_panics() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::int(1));
        p.release(a);
        p.release(a);
    }

    #[test]
    #[should_panic(expected = "dead symbol")]
    fn resolve_of_dead_symbol_panics() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::int(1));
        p.release(a);
        let _ = p.resolve(a);
    }

    #[test]
    fn encode_release_round_trip() {
        let mut p = ValuePool::new();
        let t = Tuple::new(7, vec![Value::int(7), Value::str("EDI"), Value::str("EDI")]);
        let st = p.encode(&t);
        assert_eq!(st.tid, 7);
        assert_eq!(st.arity(), 3);
        // Equal values share a symbol.
        assert_eq!(st.get(1), st.get(2));
        assert_ne!(st.get(0), st.get(1));
        assert_eq!(p.refs(st.get(1)), 2, "one ref per attribute slot");
        // `t[X]` as symbols, in attribute order.
        let xs: Vec<Sym> = st.syms_at(&[2, 0]).collect();
        assert_eq!(xs, vec![st.get(2), st.get(0)]);
        p.release_tuple(&st);
        assert!(p.is_empty());
    }

    #[test]
    fn symbols_agree_with_value_equality() {
        let mut p = ValuePool::new();
        // Int(3) vs Str("3") vs Null are distinct values → distinct syms.
        let a = p.acquire(&Value::int(3));
        let b = p.acquire(&Value::str("3"));
        let c = p.acquire(&Value::Null);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(p.acquire(&Value::Null), c, "Null groups with itself");
    }
}
