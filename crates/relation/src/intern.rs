//! Dictionary encoding of attribute values.
//!
//! The detectors' complexity argument (`O(|ΔD| + |ΔV|)` per §4) rests on
//! constant-time index probes, but probing on full [`Value`]s makes every
//! probe hash — and every index entry clone — variable-length string
//! payloads. A [`ValuePool`] interns each distinct value exactly once and
//! hands out a fixed-size symbol ([`Sym`], a `u32`); everything downstream
//! (HEV keys, grouping keys, digests, wire accounting) can then operate on
//! integer symbols:
//!
//! * `v == w  ⟺  pool.acquire(v) == pool.acquire(w)` while both are live,
//! * resolve-back is an O(1) slot read ([`ValuePool::resolve`]),
//! * the pool is reference-counted like the HEVs, so deletions
//!   garbage-collect dictionary entries and symbol ids are reused —
//!   the dictionary stays proportional to the live database.
//!
//! [`SymTuple`] is the dictionary-encoded tuple representation: one symbol
//! per attribute in an `Arc<[Sym]>`, so projections and `t[X]` extraction
//! are copy-free symbol reads instead of per-attribute value clones.

use crate::fx::FxHashMap;
use crate::schema::AttrId;
use crate::smallvec::SmallVec;
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// An interned-value symbol: index into its owning [`ValuePool`].
pub type Sym = u32;

/// The 64-bit Fx hash of a value — the one hash function [`ValuePool`]'s
/// reverse index and [`InternCache`]'s probe table share (cache hits rely
/// on the two agreeing).
fn value_hash(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fx::FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// One dictionary slot, holding the single copy of the interned value
/// (`None` marks a freed, recyclable slot).
#[derive(Debug, Clone)]
struct Slot {
    value: Option<Value>,
    refs: u32,
}

/// A reference-counted dictionary `Value ↔ Sym`.
///
/// `acquire` takes a reference on the value's symbol (allocating a slot on
/// first sight), `release` drops one and garbage-collects the slot at zero;
/// freed symbol ids are recycled for later values. Resolve-back is an O(1)
/// slot read.
///
/// The reverse index maps the value's 64-bit Fx hash to its candidate
/// symbols, verified against the slot payloads — probing hashes the value
/// once and compares `u64`s until the (almost always single) candidate is
/// checked. Compared to keying the map on the value itself, the miss path
/// saves one allocation and one re-hash per new value, and the hit path
/// never chases a shared-pointer key — measurable on bulk loads, where
/// interning dominates.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    /// Value hash → symbols of live values with that hash (collisions are
    /// possible, hence the candidate list; in practice it has one entry).
    map: FxHashMap<u64, SmallVec<Sym, 2>>,
    slots: Vec<Slot>,
    free: Vec<Sym>,
}

impl ValuePool {
    /// Fresh empty pool.
    pub fn new() -> Self {
        ValuePool::default()
    }

    /// Candidate matching `v` under hash `h`, if any.
    fn find(&self, h: u64, v: &Value) -> Option<Sym> {
        let cands = self.map.get(&h)?;
        cands
            .iter()
            .copied()
            .find(|&s| self.slots[s as usize].value.as_ref() == Some(v))
    }

    /// Symbol for `v`, taking one reference (allocates a slot for values
    /// never seen — the only place a value is ever cloned).
    pub fn acquire(&mut self, v: &Value) -> Sym {
        let h = value_hash(v);
        if let Some(s) = self.find(h, v) {
            self.slots[s as usize].refs += 1;
            return s;
        }
        let slot = Slot {
            value: Some(v.clone()),
            refs: 1,
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = slot;
                s
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as Sym
            }
        };
        self.map.entry(h).or_default().push(s);
        s
    }

    /// Symbol for `v` without touching reference counts (pure lookup).
    pub fn lookup(&self, v: &Value) -> Option<Sym> {
        self.find(value_hash(v), v)
    }

    /// Pre-size the dictionary for `additional` more distinct values —
    /// bulk loads call this once so the map grows without intermediate
    /// rehashes of everything already interned.
    pub fn reserve(&mut self, additional: usize) {
        self.map.reserve(additional);
        self.slots.reserve(additional);
    }

    /// Take `n` additional references on a live symbol in one step — bulk
    /// loads count a batch's repeats locally ([`InternCache`]) and apply
    /// them here at once instead of paying one slot write per row.
    ///
    /// # Panics
    /// Panics when `s` has no live reference.
    pub fn add_refs(&mut self, s: Sym, n: u32) {
        if n == 0 {
            return;
        }
        let slot = &mut self.slots[s as usize];
        assert!(slot.refs > 0, "add_refs on a dead symbol {s}");
        slot.refs += n;
    }

    /// The value behind a live symbol (O(1) slot read).
    ///
    /// # Panics
    /// Panics when `s` has no live slot — callers must only resolve
    /// symbols they hold references on.
    pub fn resolve(&self, s: Sym) -> &Value {
        let slot = &self.slots[s as usize];
        assert!(slot.refs > 0, "resolve of a dead symbol {s}");
        slot.value.as_ref().expect("live slot holds a value")
    }

    /// Live reference count of a symbol (0 for freed slots) — used by the
    /// property tests.
    pub fn refs(&self, s: Sym) -> u32 {
        self.slots.get(s as usize).map_or(0, |slot| slot.refs)
    }

    /// Release one reference on `s`, garbage-collecting the slot (and
    /// recycling the id) at zero.
    ///
    /// # Panics
    /// Panics when `s` has no live reference — that indicates the caller's
    /// acquire/release bookkeeping is out of sync.
    pub fn release(&mut self, s: Sym) {
        let slot = &mut self.slots[s as usize];
        assert!(slot.refs > 0, "release of a dead symbol {s}");
        slot.refs -= 1;
        if slot.refs == 0 {
            let v = slot.value.take().expect("live slot holds a value");
            let h = value_hash(&v);
            let cands = self.map.get_mut(&h).expect("live symbol is indexed");
            if cands.len() == 1 {
                self.map.remove(&h);
            } else {
                *cands = cands.iter().copied().filter(|&x| x != s).collect();
            }
            self.free.push(s);
        }
    }

    /// Dictionary-encode a tuple, acquiring one reference per attribute
    /// value.
    pub fn encode(&mut self, t: &Tuple) -> SymTuple {
        SymTuple {
            tid: t.tid,
            syms: t.values.iter().map(|v| self.acquire(v)).collect(),
        }
    }

    /// Release the references held by an encoded tuple.
    pub fn release_tuple(&mut self, t: &SymTuple) {
        for &s in t.syms.iter() {
            self.release(s);
        }
    }

    /// Number of distinct live values in the dictionary.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + recyclable) — the high-water
    /// mark of distinct simultaneous values.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A `Vec`-backed, load-local front for [`ValuePool::acquire`].
///
/// Bulk loads intern every attribute of every row; on skewed data most of
/// those are repeats, so the per-value cost is one hash of the value plus
/// one probe of the pool's global map — a map that is large and cache-cold
/// for a big dictionary — plus a refcount write into a random slot.
/// `InternCache` keeps the load's working set in one flat open-addressed
/// table of `(hash, sym, repeats)` entries: a hit verifies the candidate
/// through an O(1) [`ValuePool::resolve`] and bumps a *local* counter;
/// only misses touch the global map. [`InternCache::flush_refs`] then
/// applies the accumulated repeat counts in one [`ValuePool::add_refs`]
/// call per distinct value.
///
/// The cache holds one pool reference per cached symbol (taken by the miss
/// path's `acquire`), so every cached symbol stays live until the flush
/// transfers ownership of all counted references to the caller.
#[derive(Debug)]
pub struct InternCache {
    /// Open-addressed slots: `(value hash, symbol, repeats since miss)`.
    slots: Vec<Option<(u64, Sym, u32)>>,
    len: usize,
}

impl InternCache {
    /// Cache sized for roughly `distinct` distinct values (it grows as
    /// needed; sizing only avoids early rehashes).
    pub fn with_capacity(distinct: usize) -> Self {
        let cap = distinct.next_power_of_two().max(16) * 2;
        InternCache {
            slots: vec![None; cap],
            len: 0,
        }
    }

    /// Symbol for `v`, counting one reference: repeats bump the local
    /// counter, first sights fall through to [`ValuePool::acquire`].
    pub fn acquire(&mut self, pool: &mut ValuePool, v: &Value) -> Sym {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let hash = value_hash(v);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match &mut self.slots[i] {
                Some((h, s, extra)) if *h == hash && pool.resolve(*s) == v => {
                    *extra += 1;
                    return *s;
                }
                Some(_) => i = (i + 1) & mask,
                slot @ None => {
                    let s = pool.acquire(v);
                    *slot = Some((hash, s, 0));
                    self.len += 1;
                    return s;
                }
            }
        }
    }

    fn grow(&mut self) {
        let mut bigger: Vec<Option<(u64, Sym, u32)>> = vec![None; self.slots.len() * 2];
        let mask = bigger.len() - 1;
        for entry in self.slots.drain(..).flatten() {
            let mut i = (entry.0 as usize) & mask;
            while bigger[i].is_some() {
                i = (i + 1) & mask;
            }
            bigger[i] = Some(entry);
        }
        self.slots = bigger;
    }

    /// Number of distinct values cached so far — callers use the ratio of
    /// distinct to acquires to decide whether a column is skewed enough
    /// for the cache to pay (a nearly-all-distinct column, e.g. a key,
    /// makes every probe a miss and the cache pure overhead).
    pub fn distinct(&self) -> usize {
        self.len
    }

    /// Apply the accumulated repeat counts to `pool` (one `add_refs` per
    /// distinct value), consuming the cache. After this, `pool` holds
    /// exactly one reference per [`InternCache::acquire`] call made.
    pub fn flush_refs(self, pool: &mut ValuePool) {
        for (_, s, extra) in self.slots.into_iter().flatten() {
            pool.add_refs(s, extra);
        }
    }
}

/// A dictionary-encoded tuple: one [`Sym`] per attribute, positionally
/// aligned with the owning schema. Cloning shares the symbol buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymTuple {
    /// Unique tuple id (same id as the source [`Tuple`]).
    pub tid: Tid,
    /// Interned symbols, one per attribute.
    pub syms: Arc<[Sym]>,
}

impl SymTuple {
    /// Symbol at attribute `a` (positional).
    #[inline]
    pub fn get(&self, a: AttrId) -> Sym {
        self.syms[a as usize]
    }

    /// Symbols at `attrs` — the dictionary-encoded `t[X]`, copy-free.
    #[inline]
    pub fn syms_at<'a>(&'a self, attrs: &'a [AttrId]) -> impl Iterator<Item = Sym> + 'a {
        attrs.iter().map(|&a| self.syms[a as usize])
    }

    /// Arity of the encoded tuple.
    pub fn arity(&self) -> usize {
        self.syms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_idempotent_on_symbol() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::str("EDI"));
        let b = p.acquire(&Value::str("EDI"));
        let c = p.acquire(&Value::int(44));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
        assert_eq!(p.refs(a), 2);
        assert_eq!(p.resolve(a), &Value::str("EDI"));
        assert_eq!(p.resolve(c), &Value::int(44));
        assert_eq!(p.lookup(&Value::str("EDI")), Some(a));
        assert_eq!(p.lookup(&Value::str("NYC")), None);
    }

    #[test]
    fn release_garbage_collects_and_recycles_ids() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::str("x"));
        p.acquire(&Value::str("x"));
        p.release(a);
        assert_eq!(p.lookup(&Value::str("x")), Some(a), "one ref remains");
        p.release(a);
        assert_eq!(p.lookup(&Value::str("x")), None, "slot collected");
        assert!(p.is_empty());
        // The freed id is recycled for the next distinct value.
        let b = p.acquire(&Value::str("y"));
        assert_eq!(b, a, "free list reuses slot ids");
        assert_eq!(p.capacity(), 1, "no new slot allocated");
    }

    #[test]
    #[should_panic(expected = "dead symbol")]
    fn release_of_dead_symbol_panics() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::int(1));
        p.release(a);
        p.release(a);
    }

    #[test]
    #[should_panic(expected = "dead symbol")]
    fn resolve_of_dead_symbol_panics() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::int(1));
        p.release(a);
        let _ = p.resolve(a);
    }

    #[test]
    fn encode_release_round_trip() {
        let mut p = ValuePool::new();
        let t = Tuple::new(7, vec![Value::int(7), Value::str("EDI"), Value::str("EDI")]);
        let st = p.encode(&t);
        assert_eq!(st.tid, 7);
        assert_eq!(st.arity(), 3);
        // Equal values share a symbol.
        assert_eq!(st.get(1), st.get(2));
        assert_ne!(st.get(0), st.get(1));
        assert_eq!(p.refs(st.get(1)), 2, "one ref per attribute slot");
        // `t[X]` as symbols, in attribute order.
        let xs: Vec<Sym> = st.syms_at(&[2, 0]).collect();
        assert_eq!(xs, vec![st.get(2), st.get(0)]);
        p.release_tuple(&st);
        assert!(p.is_empty());
    }

    #[test]
    fn add_refs_bulk_matches_repeated_acquire() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::str("x"));
        p.add_refs(a, 3);
        assert_eq!(p.refs(a), 4);
        p.add_refs(a, 0);
        assert_eq!(p.refs(a), 4);
        for _ in 0..4 {
            p.release(a);
        }
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "dead symbol")]
    fn add_refs_on_dead_symbol_panics() {
        let mut p = ValuePool::new();
        let a = p.acquire(&Value::int(1));
        p.release(a);
        p.add_refs(a, 1);
    }

    #[test]
    fn intern_cache_equivalent_to_direct_acquires() {
        // A skewed stream through the cache must leave the pool in exactly
        // the state direct acquires would: same symbols, same refcounts.
        let values: Vec<Value> = (0..500)
            .map(|i| match i % 3 {
                0 => Value::str(format!("s-{}", i % 7)),
                1 => Value::int((i % 11) as i64),
                _ => Value::Null,
            })
            .collect();
        let mut direct = ValuePool::new();
        let direct_syms: Vec<Sym> = values.iter().map(|v| direct.acquire(v)).collect();
        let mut cached_pool = ValuePool::new();
        // Deliberately undersized: exercises growth.
        let mut cache = InternCache::with_capacity(2);
        let cached_syms: Vec<Sym> = values
            .iter()
            .map(|v| cache.acquire(&mut cached_pool, v))
            .collect();
        cache.flush_refs(&mut cached_pool);
        assert_eq!(direct_syms, cached_syms, "same first-sight order");
        assert_eq!(direct.len(), cached_pool.len());
        for &s in &direct_syms {
            assert_eq!(direct.refs(s), cached_pool.refs(s), "sym {s}");
        }
        // Releasing every reference drains the pool — no leaked refs.
        for &s in &cached_syms {
            cached_pool.release(s);
        }
        assert!(cached_pool.is_empty());
    }

    #[test]
    fn intern_cache_on_warm_pool_reuses_existing_symbols() {
        let mut pool = ValuePool::new();
        let pre = pool.acquire(&Value::str("warm"));
        let mut cache = InternCache::with_capacity(4);
        let s = cache.acquire(&mut pool, &Value::str("warm"));
        assert_eq!(s, pre, "cache resolves through the existing dictionary");
        cache.acquire(&mut pool, &Value::str("warm"));
        cache.flush_refs(&mut pool);
        assert_eq!(pool.refs(pre), 3);
    }

    #[test]
    fn symbols_agree_with_value_equality() {
        let mut p = ValuePool::new();
        // Int(3) vs Str("3") vs Null are distinct values → distinct syms.
        let a = p.acquire(&Value::int(3));
        let b = p.acquire(&Value::str("3"));
        let c = p.acquire(&Value::Null);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(p.acquire(&Value::Null), c, "Null groups with itself");
    }
}
