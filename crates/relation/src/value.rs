//! Attribute values.
//!
//! The paper's datasets (TPCH, DBLP, the EMP running example) only require
//! integers and strings; `Null` is included because denormalized joins and
//! generated workloads occasionally need an "absent" marker. Equality of
//! `Null` with `Null` follows SQL *grouping* semantics (equal), which is what
//! violation detection needs: two tuples agree on an attribute iff their
//! values compare equal here.

use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Absent / unknown value (groups with itself).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(Box<str>),
}

impl Value {
    /// String value from anything string-like.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Is this the null value?
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an integer value.
    pub const fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Number of bytes this value occupies on the wire. Used by the metered
    /// transport to account data shipment the way the paper does (§2.3).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len() + 4, // 4-byte length prefix
        }
    }

    /// Feed this value into an MD5/stable-digest stream: a tag byte followed
    /// by the payload. Guarantees `a == b ⟺ digest bytes equal`.
    pub fn digest_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.into())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_grouping() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::int(3), Value::from(3));
        assert_eq!(Value::str("EDI"), Value::from("EDI"));
        assert_ne!(Value::int(3), Value::str("3"));
        assert_ne!(Value::Null, Value::int(0));
    }

    #[test]
    fn wire_size_accounts_payload() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::int(7).wire_size(), 8);
        assert_eq!(Value::str("abc").wire_size(), 7);
    }

    #[test]
    fn digest_bytes_injective_across_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::int(65).digest_bytes(&mut a);
        Value::str("A").digest_bytes(&mut b);
        assert_ne!(a, b);

        // Adjacent strings must not collide under concatenation: the length
        // prefix separates ("ab","c") from ("a","bc") at the stream level.
        let mut ab_c = Vec::new();
        Value::str("ab").digest_bytes(&mut ab_c);
        Value::str("c").digest_bytes(&mut ab_c);
        let mut a_bc = Vec::new();
        Value::str("a").digest_bytes(&mut a_bc);
        Value::str("bc").digest_bytes(&mut a_bc);
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::str("Mayfield").to_string(), "Mayfield");
        assert_eq!(Value::int(-2).to_string(), "-2");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
