//! Keyed tuple storage.
//!
//! A [`Relation`] stores tuples by tuple id. Iteration order is the insertion
//! order of tids (via `BTreeMap`), which keeps everything deterministic —
//! important both for reproducible experiments and for the coordinator-side
//! sort-merge of `incVer` (Fig. 5, line 7), which relies on tid order.

use crate::schema::Schema;
use crate::tuple::{Tid, Tuple};
use crate::RelError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An instance of a schema: a set of tuples keyed by tuple id.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: BTreeMap<Tid, Tuple>,
}

impl Relation {
    /// Empty relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            tuples: BTreeMap::new(),
        }
    }

    /// Build from tuples, checking arity and tid uniqueness.
    pub fn from_tuples(
        schema: Arc<Schema>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; errors on arity mismatch or duplicate tid.
    pub fn insert(&mut self, t: Tuple) -> Result<(), RelError> {
        if t.arity() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        match self.tuples.entry(t.tid) {
            std::collections::btree_map::Entry::Occupied(_) => Err(RelError::DuplicateTid(t.tid)),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(t);
                Ok(())
            }
        }
    }

    /// Delete by tuple id, returning the removed tuple.
    pub fn delete(&mut self, tid: Tid) -> Result<Tuple, RelError> {
        self.tuples.remove(&tid).ok_or(RelError::MissingTid(tid))
    }

    /// Get a tuple by id.
    pub fn get(&self, tid: Tid) -> Option<&Tuple> {
        self.tuples.get(&tid)
    }

    /// Does the relation contain `tid`?
    pub fn contains(&self, tid: Tid) -> bool {
        self.tuples.contains_key(&tid)
    }

    /// Iterate tuples in tid order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.values()
    }

    /// Iterate tuple ids in order.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.tuples.keys().copied()
    }

    /// Largest tid present (useful for allocating fresh tids in generators).
    pub fn max_tid(&self) -> Option<Tid> {
        self.tuples.keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "a"], "id").unwrap()
    }

    fn t(tid: Tid, a: i64) -> Tuple {
        Tuple::new(tid, vec![Value::int(tid as i64), Value::int(a)])
    }

    #[test]
    fn insert_get_delete() {
        let mut r = Relation::new(schema());
        r.insert(t(1, 10)).unwrap();
        r.insert(t(2, 20)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1).unwrap().get(1), &Value::int(10));
        let removed = r.delete(1).unwrap();
        assert_eq!(removed.tid, 1);
        assert!(!r.contains(1));
        assert!(r.delete(1).is_err());
    }

    #[test]
    fn duplicate_tid_rejected() {
        let mut r = Relation::new(schema());
        r.insert(t(1, 10)).unwrap();
        assert!(matches!(r.insert(t(1, 11)), Err(RelError::DuplicateTid(1))));
        // Original survives.
        assert_eq!(r.get(1).unwrap().get(1), &Value::int(10));
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(schema());
        let bad = Tuple::new(1, vec![Value::int(1)]);
        assert!(matches!(
            r.insert(bad),
            Err(RelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn iteration_in_tid_order() {
        let mut r = Relation::new(schema());
        for tid in [5, 1, 3] {
            r.insert(t(tid, 0)).unwrap();
        }
        let order: Vec<Tid> = r.tids().collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(r.max_tid(), Some(5));
    }
}
