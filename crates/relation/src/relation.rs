//! Keyed tuple storage.
//!
//! A [`Relation`] stores tuples by tuple id on top of the columnar
//! [`ColumnStore`] arena: per-attribute dictionary-encoded columns plus a
//! dense `Tid ↔ RowId` map. Iteration order is ascending tid (via the
//! dense map), which keeps everything deterministic — important both for
//! reproducible experiments and for the coordinator-side sort-merge of
//! `incVer` (Fig. 5, line 7), which relies on tid order.
//!
//! [`Relation::get`]/[`Relation::iter`] *materialize* tuples (cloning each
//! value out of the dictionary); hot paths should use the borrow-based
//! column accessors instead — [`Relation::col`], [`Relation::value_at`],
//! [`Relation::scan`] and friends — which read symbols and borrowed values
//! straight from the store.

use crate::schema::Schema;
use crate::store::{ColumnStore, RowId};
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use crate::{RelError, Sym, ValuePool};
use std::sync::Arc;

/// An instance of a schema: a set of tuples keyed by tuple id, stored
/// columnar ([`ColumnStore`]).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    store: ColumnStore,
}

impl Relation {
    /// Empty relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let store = ColumnStore::new(schema.arity());
        Relation { schema, store }
    }

    /// Build from tuples, checking arity and tid uniqueness.
    pub fn from_tuples(
        schema: Arc<Schema>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The columnar store backing this relation.
    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    /// The relation's value dictionary (symbols are local to it).
    pub fn pool(&self) -> &ValuePool {
        self.store.pool()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Insert a tuple; errors on arity mismatch or duplicate tid.
    pub fn insert(&mut self, t: Tuple) -> Result<(), RelError> {
        self.store.insert(t.tid, t.values.iter())?;
        Ok(())
    }

    /// Insert a row from borrowed values — the allocation-free ingest path
    /// (no `Tuple` materialization; values are interned directly).
    pub fn insert_row<'a, I>(&mut self, tid: Tid, values: I) -> Result<(), RelError>
    where
        I: IntoIterator<Item = &'a Value>,
        I::IntoIter: ExactSizeIterator,
    {
        self.store.insert(tid, values)?;
        Ok(())
    }

    /// Batched ingest of raw `(tid, values)` rows — the loaders' fast
    /// path: per-column contiguous appends with a per-load intern cache
    /// (see [`ColumnStore::bulk_load`]). Validates up front; errors leave
    /// the relation untouched.
    pub fn bulk_load(&mut self, rows: &[(Tid, Vec<Value>)]) -> Result<(), RelError> {
        self.store.bulk_load(rows)
    }

    /// Delete by tuple id, returning the removed tuple (materialized).
    pub fn delete(&mut self, tid: Tid) -> Result<Tuple, RelError> {
        let row = self.store.row_of(tid).ok_or(RelError::MissingTid(tid))?;
        let t = self.materialize(tid, row);
        self.store.delete(tid).expect("row was live");
        Ok(t)
    }

    /// Delete by tuple id without materializing the removed tuple.
    pub fn delete_quiet(&mut self, tid: Tid) -> Result<(), RelError> {
        self.store.delete(tid)
    }

    /// Get a tuple by id (materialized — prefer [`Relation::value_at`] /
    /// [`ColumnStore::row_syms`] on hot paths).
    pub fn get(&self, tid: Tid) -> Option<Tuple> {
        let row = self.store.row_of(tid)?;
        Some(self.materialize(tid, row))
    }

    /// Does the relation contain `tid`?
    pub fn contains(&self, tid: Tid) -> bool {
        self.store.contains(tid)
    }

    /// Iterate tuples in tid order (materialized — prefer
    /// [`Relation::scan`] on hot paths).
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.store
            .rows()
            .map(move |(tid, row)| self.materialize(tid, row))
    }

    /// Iterate tuple ids in order.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.store.rows().map(|(t, _)| t)
    }

    /// Live `(tid, row)` pairs in ascending tid order — the columnar scan
    /// entry point (index into [`Relation::col`] with the row).
    pub fn scan(&self) -> impl Iterator<Item = (Tid, RowId)> + '_ {
        self.store.rows()
    }

    /// Row of `tid`, if live.
    pub fn row_of(&self, tid: Tid) -> Option<RowId> {
        self.store.row_of(tid)
    }

    /// The full column of attribute `a` (includes freed rows; index with
    /// rows from [`Relation::scan`]).
    pub fn col(&self, a: crate::AttrId) -> &[Sym] {
        self.store.col(a)
    }

    /// Borrowed value at `(tid, attr)` — O(1), no clone.
    pub fn value_at(&self, tid: Tid, a: crate::AttrId) -> Option<&Value> {
        self.store.row_of(tid).map(|row| self.store.value(row, a))
    }

    /// Symbol at `(tid, attr)`.
    pub fn sym_at(&self, tid: Tid, a: crate::AttrId) -> Option<Sym> {
        self.store.row_of(tid).map(|row| self.store.sym(row, a))
    }

    /// Largest tid present (useful for allocating fresh tids in generators).
    pub fn max_tid(&self) -> Option<Tid> {
        self.store.max_tid()
    }

    /// Live tuples with a null at attribute `a` — O(1) completeness
    /// metadata maintained by every mutation path (see
    /// [`ColumnStore::null_count`]).
    pub fn null_count(&self, a: crate::AttrId) -> u64 {
        self.store.null_count(a)
    }

    fn materialize(&self, tid: Tid, row: RowId) -> Tuple {
        Tuple::new(
            tid,
            self.store
                .row_syms(row)
                .map(|s| self.store.pool().resolve(s).clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["id", "a"], "id").unwrap()
    }

    fn t(tid: Tid, a: i64) -> Tuple {
        Tuple::new(tid, vec![Value::int(tid as i64), Value::int(a)])
    }

    #[test]
    fn insert_get_delete() {
        let mut r = Relation::new(schema());
        r.insert(t(1, 10)).unwrap();
        r.insert(t(2, 20)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1).unwrap().get(1), &Value::int(10));
        let removed = r.delete(1).unwrap();
        assert_eq!(removed.tid, 1);
        assert!(!r.contains(1));
        assert!(r.delete(1).is_err());
    }

    #[test]
    fn duplicate_tid_rejected() {
        let mut r = Relation::new(schema());
        r.insert(t(1, 10)).unwrap();
        assert!(matches!(r.insert(t(1, 11)), Err(RelError::DuplicateTid(1))));
        // Original survives.
        assert_eq!(r.get(1).unwrap().get(1), &Value::int(10));
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(schema());
        let bad = Tuple::new(1, vec![Value::int(1)]);
        assert!(matches!(
            r.insert(bad),
            Err(RelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn iteration_in_tid_order() {
        let mut r = Relation::new(schema());
        for tid in [5, 1, 3] {
            r.insert(t(tid, 0)).unwrap();
        }
        let order: Vec<Tid> = r.tids().collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(r.max_tid(), Some(5));
    }

    #[test]
    fn columnar_accessors_borrow_from_the_store() {
        let mut r = Relation::new(schema());
        r.insert(t(1, 7)).unwrap();
        r.insert(t(2, 7)).unwrap();
        assert_eq!(r.value_at(1, 1), Some(&Value::int(7)));
        assert_eq!(r.value_at(99, 1), None);
        // Equal values share a symbol within the relation's pool.
        assert_eq!(r.sym_at(1, 1), r.sym_at(2, 1));
        let rows: Vec<_> = r.scan().collect();
        assert_eq!(rows.len(), 2);
        let col = r.col(1);
        assert_eq!(col[rows[0].1 as usize], col[rows[1].1 as usize]);
    }

    #[test]
    fn insert_row_avoids_tuple_materialization() {
        let mut r = Relation::new(schema());
        let vals = [Value::int(9), Value::int(1)];
        r.insert_row(9, vals.iter()).unwrap();
        assert_eq!(r.get(9).unwrap().get(1), &Value::int(1));
        r.delete_quiet(9).unwrap();
        assert!(r.is_empty());
        assert!(r.pool().is_empty());
    }
}
