//! Minimal CSV import/export for relations.
//!
//! A downstream user's data lives in files, not in generator closures;
//! this module round-trips [`Relation`]s through RFC-4180-style CSV
//! (quoted fields, embedded commas/quotes/newlines). The first column must
//! be the key attribute and is also used as the tuple id when it parses as
//! an unsigned integer; otherwise sequential tids are assigned.
//!
//! Typing is by sniffing: a field that parses as `i64` becomes
//! [`Value::Int`], an empty unquoted field becomes [`Value::Null`], and
//! everything else is a string. Quoted fields are always strings
//! (`"42"` stays textual).

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use crate::RelError;
use std::sync::Arc;

/// CSV errors.
#[derive(Debug)]
pub enum CsvError {
    /// Malformed CSV (unbalanced quote, ragged row, empty input…).
    Parse(String),
    /// Schema/tuple-level failure while loading rows.
    Rel(RelError),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Parse(s) => write!(f, "csv parse error: {s}"),
            CsvError::Rel(e) => write!(f, "{e}"),
            CsvError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<RelError> for CsvError {
    fn from(e: RelError) -> Self {
        CsvError::Rel(e)
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// One parsed field: raw text plus whether it was quoted.
#[derive(Debug, PartialEq)]
struct Field {
    text: String,
    quoted: bool,
}

/// Parse one CSV record starting at `chars`; returns the fields and the
/// remaining input. Handles quoted fields with embedded delimiters,
/// escaped quotes (`""`) and newlines.
fn parse_record(input: &str) -> Result<(Vec<Field>, &str), CsvError> {
    let mut fields = Vec::new();
    let mut rest = input;
    loop {
        let (field, after) = parse_field(rest)?;
        fields.push(field);
        let mut chars = after.char_indices();
        match chars.next() {
            None => return Ok((fields, "")),
            Some((_, ',')) => rest = &after[1..],
            Some((_, '\n')) => return Ok((fields, &after[1..])),
            Some((_, '\r')) => {
                let after2 = after[1..].strip_prefix('\n').unwrap_or(&after[1..]);
                return Ok((fields, after2));
            }
            Some((i, c)) => {
                return Err(CsvError::Parse(format!(
                    "unexpected character {c:?} at offset {i} after field"
                )))
            }
        }
    }
}

fn parse_field(input: &str) -> Result<(Field, &str), CsvError> {
    if let Some(rest) = input.strip_prefix('"') {
        // Quoted field: scan for the closing quote, honouring "".
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            if c == '"' {
                if rest[i + 1..].starts_with('"') {
                    out.push('"');
                    chars.next();
                } else {
                    return Ok((
                        Field {
                            text: out,
                            quoted: true,
                        },
                        &rest[i + 1..],
                    ));
                }
            } else {
                out.push(c);
            }
        }
        Err(CsvError::Parse("unterminated quoted field".into()))
    } else {
        let end = input.find([',', '\n', '\r']).unwrap_or(input.len());
        Ok((
            Field {
                text: input[..end].to_string(),
                quoted: false,
            },
            &input[end..],
        ))
    }
}

fn field_value(f: &Field) -> Value {
    if f.quoted {
        return Value::str(f.text.clone());
    }
    if f.text.is_empty() {
        return Value::Null;
    }
    match f.text.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(f.text.clone()),
    }
}

/// Parse a relation from CSV text. The header row gives the attribute
/// names; the first column is the key.
pub fn read_str(name: &str, input: &str) -> Result<Relation, CsvError> {
    let (header, mut rest) = parse_record(input)?;
    if header.is_empty() || header.iter().all(|f| f.text.is_empty()) {
        return Err(CsvError::Parse("empty header".into()));
    }
    let names: Vec<&str> = header.iter().map(|f| f.text.as_str()).collect();
    let schema: Arc<Schema> = Schema::new(name, &names, names[0]).map_err(CsvError::Rel)?;
    let mut rel = Relation::new(schema.clone());
    let mut next_tid: Tid = 0;
    let mut row_no = 1usize;
    while !rest.is_empty() {
        let (fields, after) = parse_record(rest)?;
        rest = after;
        row_no += 1;
        if fields.len() == 1 && fields[0].text.is_empty() {
            continue; // trailing blank line
        }
        if fields.len() != names.len() {
            return Err(CsvError::Parse(format!(
                "row {row_no}: {} fields, expected {}",
                fields.len(),
                names.len()
            )));
        }
        let values: Vec<Value> = fields.iter().map(field_value).collect();
        let tid = match &values[0] {
            Value::Int(i) if *i >= 0 => *i as Tid,
            _ => {
                let t = next_tid;
                next_tid += 1;
                t
            }
        };
        next_tid = next_tid.max(tid + 1);
        rel.insert(Tuple::new(tid, values))?;
    }
    Ok(rel)
}

/// Read a relation from a CSV file.
pub fn read_file(name: &str, path: impl AsRef<std::path::Path>) -> Result<Relation, CsvError> {
    let text = std::fs::read_to_string(path)?;
    read_str(name, &text)
}

fn write_field(out: &mut String, v: &Value) {
    match v {
        Value::Null => {}
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Str(s) => {
            let needs_quote = s.contains(',')
                || s.contains('"')
                || s.contains('\n')
                || s.contains('\r')
                || s.parse::<i64>().is_ok()
                || s.is_empty();
            if needs_quote {
                out.push('"');
                out.push_str(&s.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
    }
}

/// Serialize a relation to CSV text (header + one row per tuple, in tid
/// order). `read_str(write_str(r)) == r` up to tid assignment.
pub fn write_str(rel: &Relation) -> String {
    let schema = rel.schema();
    let mut out = String::new();
    for (i, a) in schema.attributes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, &Value::str(a.name.clone()));
    }
    out.push('\n');
    for t in rel.iter() {
        for (i, v) in t.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, v);
        }
        out.push('\n');
    }
    out
}

/// Write a relation to a CSV file.
pub fn write_file(rel: &Relation, path: impl AsRef<std::path::Path>) -> Result<(), CsvError> {
    std::fs::write(path, write_str(rel))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let r = read_str("EMP", "id,name,cc\n1,Mike,44\n2,Sam,44\n").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().to_string(), "EMP(*id, name, cc)");
        let t = r.get(1).unwrap();
        assert_eq!(t.get(1), &Value::str("Mike"));
        assert_eq!(t.get(2), &Value::int(44));
    }

    #[test]
    fn quoted_fields_keep_commas_quotes_newlines() {
        let r = read_str(
            "R",
            "id,note\n1,\"a,b\"\n2,\"say \"\"hi\"\"\"\n3,\"two\nlines\"\n",
        )
        .unwrap();
        assert_eq!(r.get(1).unwrap().get(1), &Value::str("a,b"));
        assert_eq!(r.get(2).unwrap().get(1), &Value::str("say \"hi\""));
        assert_eq!(r.get(3).unwrap().get(1), &Value::str("two\nlines"));
    }

    #[test]
    fn quoted_numbers_stay_strings_and_empty_is_null() {
        let r = read_str("R", "id,a,b\n1,\"42\",\n").unwrap();
        let t = r.get(1).unwrap();
        assert_eq!(t.get(1), &Value::str("42"));
        assert_eq!(t.get(2), &Value::Null);
    }

    #[test]
    fn integer_keys_become_tids_others_sequential() {
        let r = read_str("R", "code,x\nA7,1\nB9,2\n").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(0) && r.contains(1));
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            read_str("R", "id,a\n1,2,3\n"),
            Err(CsvError::Parse(_))
        ));
        assert!(matches!(
            read_str("R", "id,a\n1,\"open\n"),
            Err(CsvError::Parse(_))
        ));
        assert!(matches!(read_str("R", ""), Err(CsvError::Parse(_))));
    }

    #[test]
    fn round_trip() {
        let src = "id,name,cc,note\n1,Mike,44,\"a,b\"\n2,\"42\",44,plain\n";
        let r = read_str("EMP", src).unwrap();
        let out = write_str(&r);
        let r2 = read_str("EMP", &out).unwrap();
        assert_eq!(r.len(), r2.len());
        for (a, b) in r.iter().zip(r2.iter()) {
            assert_eq!(a, b, "round trip must preserve tuples");
        }
    }

    #[test]
    fn file_io() {
        let dir = std::env::temp_dir().join("inc_cfd_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emp.csv");
        let r = read_str("EMP", "id,a\n1,x\n2,y\n").unwrap();
        write_file(&r, &path).unwrap();
        let r2 = read_file("EMP", &path).unwrap();
        assert_eq!(r2.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crlf_line_endings() {
        let r = read_str("R", "id,a\r\n1,x\r\n2,y\r\n").unwrap();
        assert_eq!(r.len(), 2);
    }
}
