//! Tuples.
//!
//! Every tuple carries a globally unique tuple id (`Tid`). The paper's
//! algorithms identify violations by tuple id and use ids to sort-merge
//! partial tuples at coordinator sites; ids also let vertical fragments of
//! the same logical tuple be re-associated without comparing key values.

use crate::schema::AttrId;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Globally unique tuple identifier.
pub type Tid = u64;

/// A tuple: an id plus one value per schema attribute (or per fragment
/// attribute when the tuple is a projection).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Unique tuple id.
    pub tid: Tid,
    /// Values, positionally aligned with the owning schema or fragment.
    pub values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from an id and values.
    pub fn new(tid: Tid, values: Vec<Value>) -> Self {
        Tuple {
            tid,
            values: values.into(),
        }
    }

    /// Value at attribute `a` (positional).
    #[inline]
    pub fn get(&self, a: AttrId) -> &Value {
        &self.values[a as usize]
    }

    /// Project onto `attrs`, preserving the tuple id. Used by vertical
    /// partitioning (`D_i = π_{X_i}(D)`).
    pub fn project(&self, attrs: &[AttrId]) -> Tuple {
        Tuple::new(
            self.tid,
            attrs
                .iter()
                .map(|&a| self.values[a as usize].clone())
                .collect(),
        )
    }

    /// Values at `attrs`, cloned into a vector (the `t[X]` notation).
    /// Call sites that only *read* `t[X]` should prefer [`Tuple::iter_at`],
    /// which borrows instead of cloning.
    pub fn values_at(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs
            .iter()
            .map(|&a| self.values[a as usize].clone())
            .collect()
    }

    /// Borrowing view of `t[X]`: the values at `attrs` in order, no clones.
    #[inline]
    pub fn iter_at<'a>(&'a self, attrs: &'a [AttrId]) -> impl ExactSizeIterator<Item = &'a Value> {
        attrs.iter().map(|&a| &self.values[a as usize])
    }

    /// Arity of this tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Wire size of the full tuple (id + values).
    pub fn wire_size(&self) -> usize {
        8 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Wire size of a projection of this tuple.
    pub fn wire_size_of(&self, attrs: &[AttrId]) -> usize {
        8 + attrs
            .iter()
            .map(|&a| self.values[a as usize].wire_size())
            .sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}(", self.tid)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            5,
            vec![Value::int(5), Value::str("Adam"), Value::str("EDI")],
        )
    }

    #[test]
    fn get_and_values_at() {
        let t = t();
        assert_eq!(t.get(1), &Value::str("Adam"));
        assert_eq!(t.values_at(&[2, 0]), vec![Value::str("EDI"), Value::int(5)]);
        let borrowed: Vec<&Value> = t.iter_at(&[2, 0]).collect();
        assert_eq!(borrowed, vec![&Value::str("EDI"), &Value::int(5)]);
    }

    #[test]
    fn projection_keeps_tid() {
        let p = t().project(&[0, 2]);
        assert_eq!(p.tid, 5);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.get(1), &Value::str("EDI"));
    }

    #[test]
    fn wire_sizes() {
        let t = t();
        // 8 (tid) + 8 (int) + (4+4) (Adam) + (4+3) (EDI)
        assert_eq!(t.wire_size(), 8 + 8 + 8 + 7);
        assert_eq!(t.wire_size_of(&[0]), 16);
    }

    #[test]
    fn cheap_clone_shares_values() {
        let a = t();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.values, &b.values));
    }
}
