//! Columnar, arena-backed tuple storage.
//!
//! [`ColumnStore`] is the physical representation behind [`Relation`]: one
//! dictionary-encoded column (`Vec<Sym>`) per attribute, a row arena with
//! free-list reuse, and a [`TidMap`] giving dense `Tid ↔ RowId` lookup plus
//! tid-ordered iteration. Compared to the previous `BTreeMap<Tid, Tuple>`:
//!
//! * **bulk loads** append one `u32` per attribute to contiguous columns
//!   (no per-tuple `Arc<[Value]>` allocation, no tree rebalancing);
//! * **scans** read a column as one cache-friendly `&[Sym]` slice
//!   ([`ColumnStore::col`]) instead of chasing a pointer per tuple;
//! * **projections** (`t[X]`) are a handful of indexed `u32` reads
//!   ([`ColumnStore::row_syms`]) instead of per-attribute value clones;
//! * every attribute value is interned exactly once in the store's own
//!   [`ValuePool`], so value equality within the store is symbol equality —
//!   grouping and pattern checks downstream are pure integer work.
//!
//! Deletion releases the row's dictionary references and pushes the row
//! onto a free list; a later insertion reuses the slot, so the arena stays
//! proportional to the live relation's high-water mark.
//!
//! [`Relation`]: crate::relation::Relation

use crate::fx::FxHashSet;
use crate::intern::{InternCache, Sym, ValuePool};
use crate::schema::AttrId;
use crate::tuple::Tid;
use crate::value::Value;
use crate::RelError;
use std::collections::BTreeMap;

/// Index of a physical row in the arena.
pub type RowId = u32;

/// Dense `Tid → RowId` map with tid-ordered iteration.
///
/// Tuple ids in every workload here are small, mostly-contiguous integers,
/// so the map is a direct-index vector (`row + 1`, `0` = absent) for tids
/// inside a growing dense window, with a `BTreeMap` overflow for outliers.
/// The invariant `sparse keys ≥ dense.len()` makes tid-ordered iteration a
/// linear dense scan followed by the in-order overflow walk.
#[derive(Debug, Clone, Default)]
pub struct TidMap {
    /// `row + 1` per tid; `0` marks an absent tid.
    dense: Vec<u32>,
    /// Overflow for tids beyond the dense window (all keys ≥ `dense.len()`).
    sparse: BTreeMap<Tid, RowId>,
    len: usize,
}

impl TidMap {
    /// Tids this far past the dense window still grow it (amortized by the
    /// doubling term in [`TidMap::admit_dense`]); anything farther goes to
    /// the overflow tree so one huge tid cannot balloon the vector.
    const DENSE_SLACK: usize = 4096;

    /// Should `tid` live in the dense window (growing it if needed)?
    fn admit_dense(&self, tid: Tid) -> bool {
        (tid as usize) < self.dense.len().max(1) * 2 + Self::DENSE_SLACK
    }

    /// Row of `tid`, if present.
    #[inline]
    pub fn get(&self, tid: Tid) -> Option<RowId> {
        match self.dense.get(tid as usize) {
            Some(0) => None,
            Some(&r) => Some(r - 1),
            None => self.sparse.get(&tid).copied(),
        }
    }

    /// Insert `tid → row`; returns `false` (and changes nothing) when the
    /// tid is already mapped.
    pub fn insert(&mut self, tid: Tid, row: RowId) -> bool {
        if (tid as usize) >= self.dense.len() && self.admit_dense(tid) {
            self.dense.resize(tid as usize + 1, 0);
            // Keep the invariant: overflow keys now inside the window move in.
            let moved: Vec<(Tid, RowId)> = {
                let mut inside = self.sparse.range(..self.dense.len() as Tid);
                let mut v = Vec::new();
                for (&t, &r) in inside.by_ref() {
                    v.push((t, r));
                }
                v
            };
            for (t, r) in moved {
                self.sparse.remove(&t);
                self.dense[t as usize] = r + 1;
            }
        }
        if let Some(slot) = self.dense.get_mut(tid as usize) {
            if *slot != 0 {
                return false;
            }
            *slot = row + 1;
        } else {
            match self.sparse.entry(tid) {
                std::collections::btree_map::Entry::Occupied(_) => return false,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(row);
                }
            }
        }
        self.len += 1;
        true
    }

    /// Remove `tid`, returning its row.
    pub fn remove(&mut self, tid: Tid) -> Option<RowId> {
        let row = if let Some(slot) = self.dense.get_mut(tid as usize) {
            if *slot == 0 {
                return None;
            }
            let r = *slot - 1;
            *slot = 0;
            r
        } else {
            self.sparse.remove(&tid)?
        };
        self.len -= 1;
        Some(row)
    }

    /// Number of mapped tids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(tid, row)` pairs in ascending tid order.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, RowId)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &slot)| slot != 0)
            .map(|(tid, &slot)| (tid as Tid, slot - 1))
            .chain(self.sparse.iter().map(|(&t, &r)| (t, r)))
    }

    /// Largest mapped tid.
    pub fn max_tid(&self) -> Option<Tid> {
        if let Some((&t, _)) = self.sparse.iter().next_back() {
            return Some(t);
        }
        self.dense
            .iter()
            .rposition(|&slot| slot != 0)
            .map(|i| i as Tid)
    }
}

/// Columnar arena storage: the physical layer of a [`Relation`].
///
/// [`Relation`]: crate::relation::Relation
#[derive(Debug, Clone)]
pub struct ColumnStore {
    arity: usize,
    pool: ValuePool,
    /// One dictionary-encoded column per attribute; all columns share the
    /// same row indexing. Freed rows keep stale symbols (their pool
    /// references are released on delete) until the slot is reused.
    cols: Vec<Vec<Sym>>,
    /// Row → tid (stale for freed rows).
    row_tids: Vec<Tid>,
    /// Freed, reusable rows.
    free: Vec<RowId>,
    tids: TidMap,
    /// Live null occurrences per attribute, maintained by
    /// insert/bulk_load/delete — the completeness metadata column
    /// consumed by the validation suite (`cfd::constraint`): a not-null
    /// check over an attribute with `null_count == 0` needs no scan.
    null_counts: Vec<u64>,
}

impl ColumnStore {
    /// Empty store for `arity` attributes.
    pub fn new(arity: usize) -> Self {
        ColumnStore {
            arity,
            pool: ValuePool::new(),
            cols: (0..arity).map(|_| Vec::new()).collect(),
            row_tids: Vec::new(),
            free: Vec::new(),
            tids: TidMap::default(),
            null_counts: vec![0; arity],
        }
    }

    /// Live tuples with a null at attribute `a` — O(1), maintained by
    /// every mutation path.
    pub fn null_count(&self, a: AttrId) -> u64 {
        self.null_counts[a as usize]
    }

    /// Attribute count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Physical rows allocated (live + free) — the arena high-water mark.
    pub fn n_rows(&self) -> usize {
        self.row_tids.len()
    }

    /// The store's value dictionary.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Row of `tid`, if live.
    #[inline]
    pub fn row_of(&self, tid: Tid) -> Option<RowId> {
        self.tids.get(tid)
    }

    /// Is `tid` live?
    pub fn contains(&self, tid: Tid) -> bool {
        self.tids.get(tid).is_some()
    }

    /// The full column of attribute `a`, **including freed rows** — pair
    /// with [`ColumnStore::rows`] (or a remembered [`RowId`]) to read only
    /// live entries. This is the bulk-scan entry point: one contiguous
    /// `u32` slice per attribute.
    #[inline]
    pub fn col(&self, a: AttrId) -> &[Sym] {
        &self.cols[a as usize]
    }

    /// Symbol at `(row, attr)`.
    #[inline]
    pub fn sym(&self, row: RowId, a: AttrId) -> Sym {
        self.cols[a as usize][row as usize]
    }

    /// Value at `(row, attr)` — an O(1) borrow from the dictionary.
    #[inline]
    pub fn value(&self, row: RowId, a: AttrId) -> &Value {
        self.pool.resolve(self.sym(row, a))
    }

    /// The row's symbols in attribute order (the dictionary-encoded tuple).
    #[inline]
    pub fn row_syms(&self, row: RowId) -> impl ExactSizeIterator<Item = Sym> + '_ {
        self.cols.iter().map(move |c| c[row as usize])
    }

    /// Projected symbols `t[X]` of one row, in `attrs` order.
    #[inline]
    pub fn project_syms<'a>(
        &'a self,
        row: RowId,
        attrs: &'a [AttrId],
    ) -> impl ExactSizeIterator<Item = Sym> + 'a {
        attrs.iter().map(move |&a| self.sym(row, a))
    }

    /// Projected values of one row, in `attrs` order (borrowed).
    #[inline]
    pub fn project_values<'a>(
        &'a self,
        row: RowId,
        attrs: &'a [AttrId],
    ) -> impl ExactSizeIterator<Item = &'a Value> + 'a {
        attrs.iter().map(move |&a| self.value(row, a))
    }

    /// Tid of a live row.
    #[inline]
    pub fn tid_of(&self, row: RowId) -> Tid {
        self.row_tids[row as usize]
    }

    /// Live `(tid, row)` pairs in ascending tid order.
    pub fn rows(&self) -> impl Iterator<Item = (Tid, RowId)> + '_ {
        self.tids.iter()
    }

    /// Largest live tid.
    pub fn max_tid(&self) -> Option<Tid> {
        self.tids.max_tid()
    }

    /// Insert a row for `tid` from borrowed values, interning each value
    /// into the store's pool. Errors on arity mismatch or duplicate tid
    /// without mutating anything.
    pub fn insert<'a, I>(&mut self, tid: Tid, values: I) -> Result<RowId, RelError>
    where
        I: IntoIterator<Item = &'a Value>,
        I::IntoIter: ExactSizeIterator,
    {
        let values = values.into_iter();
        if values.len() != self.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: values.len(),
            });
        }
        if self.contains(tid) {
            return Err(RelError::DuplicateTid(tid));
        }
        let row = match self.free.pop() {
            Some(r) => {
                for ((c, nulls), v) in self.cols.iter_mut().zip(&mut self.null_counts).zip(values) {
                    c[r as usize] = self.pool.acquire(v);
                    *nulls += u64::from(v.is_null());
                }
                self.row_tids[r as usize] = tid;
                r
            }
            None => {
                let r = self.row_tids.len() as RowId;
                for ((c, nulls), v) in self.cols.iter_mut().zip(&mut self.null_counts).zip(values) {
                    c.push(self.pool.acquire(v));
                    *nulls += u64::from(v.is_null());
                }
                self.row_tids.push(tid);
                r
            }
        };
        let fresh = self.tids.insert(tid, row);
        debug_assert!(fresh, "contains() checked above");
        Ok(row)
    }

    /// Batched ingest of `rows` — equivalent to one [`ColumnStore::insert`]
    /// per row, but built for loaders:
    ///
    /// * validation happens up front (arity, duplicates against the store
    ///   *and* within the batch), so errors leave the store untouched;
    /// * columns are reserved once and appended **column-major** — one
    ///   contiguous `u32` run per attribute instead of `arity` scattered
    ///   pushes per row;
    /// * interning runs through a per-load [`InternCache`]: repeats pay a
    ///   flat-table probe and a local counter instead of a global-map
    ///   probe plus a refcount write, and the counts are applied to the
    ///   pool in one step per distinct value at the end.
    ///
    /// New rows always extend the arena; the free list is left to
    /// single-row inserts.
    pub fn bulk_load(&mut self, rows: &[(Tid, Vec<Value>)]) -> Result<(), RelError> {
        // Duplicates within the batch: strictly increasing tids (the
        // common loader shape) imply distinctness for free; otherwise a
        // set takes over from the first inversion.
        let mut batch = FxHashSet::default();
        let mut prev: Option<Tid> = None;
        let mut sorted = true;
        for (i, (tid, vals)) in rows.iter().enumerate() {
            if vals.len() != self.arity {
                return Err(RelError::ArityMismatch {
                    expected: self.arity,
                    got: vals.len(),
                });
            }
            if self.contains(*tid) {
                return Err(RelError::DuplicateTid(*tid));
            }
            if sorted && prev.is_some_and(|p| p >= *tid) {
                sorted = false;
                batch.reserve(rows.len());
                batch.extend(rows[..i].iter().map(|(t, _)| *t));
            }
            if !sorted && !batch.insert(*tid) {
                return Err(RelError::DuplicateTid(*tid));
            }
            prev = Some(*tid);
        }
        let base = self.row_tids.len() as RowId;
        // Upper-bounded pre-size: skewed loads (the common case) have far
        // fewer distinct values than rows, and an all-distinct load past
        // the cap just grows amortized as usual.
        self.pool.reserve(rows.len().min(1 << 16));
        // Sample size for the per-column skew probe, and the distinct
        // fraction above which the cache is judged not to pay.
        const SAMPLE: usize = 256;
        for (a, col) in self.cols.iter_mut().enumerate() {
            col.reserve(rows.len());
            // Per-column cache: domains are disjoint across attributes,
            // and a per-column decision can bypass it where it loses.
            let mut cache = InternCache::with_capacity(rows.len().min(1 << 14));
            let probe = rows.len().min(SAMPLE);
            for (_, vals) in &rows[..probe] {
                col.push(cache.acquire(&mut self.pool, &vals[a]));
            }
            if cache.distinct() * 4 > probe * 3 {
                // Nearly all distinct (keys, serial numbers): every probe
                // is a miss, so intern the rest of the column directly.
                for (_, vals) in &rows[probe..] {
                    col.push(self.pool.acquire(&vals[a]));
                }
            } else {
                for (_, vals) in &rows[probe..] {
                    col.push(cache.acquire(&mut self.pool, &vals[a]));
                }
            }
            cache.flush_refs(&mut self.pool);
            self.null_counts[a] += rows.iter().filter(|(_, vals)| vals[a].is_null()).count() as u64;
        }
        self.row_tids.reserve(rows.len());
        for (i, (tid, _)) in rows.iter().enumerate() {
            self.row_tids.push(*tid);
            let fresh = self.tids.insert(*tid, base + i as RowId);
            debug_assert!(fresh, "pre-validated above");
        }
        Ok(())
    }

    /// Delete `tid`: release its dictionary references and recycle the row.
    pub fn delete(&mut self, tid: Tid) -> Result<(), RelError> {
        let row = self.tids.remove(tid).ok_or(RelError::MissingTid(tid))?;
        for (c, nulls) in self.cols.iter().zip(&mut self.null_counts) {
            let sym = c[row as usize];
            *nulls -= u64::from(self.pool.resolve(sym).is_null());
            self.pool.release(sym);
        }
        self.free.push(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn tid_map_dense_and_sparse() {
        let mut m = TidMap::default();
        assert!(m.insert(3, 30));
        assert!(m.insert(1, 10));
        assert!(!m.insert(3, 99), "duplicate rejected");
        // Far outside the dense window → overflow tree.
        let far = 10_000_000;
        assert!(m.insert(far, 70));
        assert_eq!(m.get(3), Some(30));
        assert_eq!(m.get(far), Some(70));
        assert_eq!(m.get(2), None);
        assert_eq!(m.len(), 3);
        let order: Vec<Tid> = m.iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![1, 3, far]);
        assert_eq!(m.max_tid(), Some(far));
        assert_eq!(m.remove(far), Some(70));
        assert_eq!(m.max_tid(), Some(3));
        assert_eq!(m.remove(far), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tid_map_migrates_overflow_into_grown_window() {
        let mut m = TidMap::default();
        m.insert(0, 0);
        let mid = (TidMap::DENSE_SLACK * 4) as Tid; // overflow at first
        m.insert(mid, 1);
        assert_eq!(m.sparse.len(), 1);
        // Inserting nearby tids grows the window past `mid` eventually.
        let mut next_row = 2;
        let mut t = TidMap::DENSE_SLACK as Tid / 2;
        while m.dense.len() <= mid as usize {
            m.insert(t, next_row);
            next_row += 1;
            t = (m.dense.len() as Tid * 2).min(mid + 1);
        }
        assert!(m.sparse.is_empty(), "overflow migrated into dense window");
        assert_eq!(m.get(mid), Some(1));
        let order: Vec<Tid> = m.iter().map(|(t, _)| t).collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "tid order preserved");
    }

    #[test]
    fn insert_scan_delete_round_trip() {
        let mut s = ColumnStore::new(2);
        s.insert(5, [&v("a"), &v("x")]).unwrap();
        s.insert(1, [&v("b"), &v("x")]).unwrap();
        s.insert(3, [&v("a"), &v("y")]).unwrap();
        assert_eq!(s.len(), 3);
        let order: Vec<Tid> = s.rows().map(|(t, _)| t).collect();
        assert_eq!(order, vec![1, 3, 5]);
        // Shared values share symbols.
        let r5 = s.row_of(5).unwrap();
        let r3 = s.row_of(3).unwrap();
        assert_eq!(s.sym(r5, 0), s.sym(r3, 0));
        assert_eq!(s.value(r5, 1), &v("x"));
        assert_eq!(s.pool().len(), 4, "a, b, x, y");
        // Column scan sees all three rows.
        assert_eq!(s.col(0).len(), 3);

        s.delete(3).unwrap();
        assert_eq!(s.len(), 2);
        assert!(matches!(s.delete(3), Err(RelError::MissingTid(3))));
        assert_eq!(s.pool().len(), 3, "y collected");
        // The freed row is reused, not grown.
        s.insert(9, [&v("c"), &v("z")]).unwrap();
        assert_eq!(s.n_rows(), 3, "arena reuses the freed slot");
        assert_eq!(s.row_of(9), Some(r3));
    }

    #[test]
    fn null_counts_track_every_mutation_path() {
        let mut s = ColumnStore::new(2);
        assert_eq!(s.null_count(0), 0);
        s.insert(1, [&Value::Null, &v("x")]).unwrap();
        s.insert(2, [&v("a"), &Value::Null]).unwrap();
        assert_eq!((s.null_count(0), s.null_count(1)), (1, 1));
        s.bulk_load(&[
            (3, vec![Value::Null, Value::Null]),
            (4, vec![v("b"), v("y")]),
        ])
        .unwrap();
        assert_eq!((s.null_count(0), s.null_count(1)), (2, 2));
        s.delete(1).unwrap();
        s.delete(3).unwrap();
        assert_eq!((s.null_count(0), s.null_count(1)), (0, 1));
        // Free-list reuse keeps the meter exact.
        s.insert(5, [&Value::Null, &v("z")]).unwrap();
        assert_eq!((s.null_count(0), s.null_count(1)), (1, 1));
        s.delete(5).unwrap();
        s.delete(2).unwrap();
        s.delete(4).unwrap();
        assert_eq!((s.null_count(0), s.null_count(1)), (0, 0));
    }

    #[test]
    fn insert_errors_leave_store_untouched() {
        let mut s = ColumnStore::new(2);
        s.insert(1, [&v("a"), &v("b")]).unwrap();
        let pool_before = s.pool().len();
        assert!(matches!(
            s.insert(1, [&v("q"), &v("r")]),
            Err(RelError::DuplicateTid(1))
        ));
        assert!(matches!(
            s.insert(2, [&v("q")]),
            Err(RelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(s.pool().len(), pool_before, "no leaked dictionary refs");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bulk_load_equivalent_to_insert_loop() {
        let rows: Vec<(Tid, Vec<Value>)> = (0..200u64)
            .map(|i| {
                (
                    i,
                    vec![v(&format!("a-{}", i % 7)), v(&format!("b-{}", i % 13))],
                )
            })
            .collect();
        let mut looped = ColumnStore::new(2);
        for (tid, vals) in &rows {
            looped.insert(*tid, vals.iter()).unwrap();
        }
        let mut bulk = ColumnStore::new(2);
        bulk.bulk_load(&rows).unwrap();
        assert_eq!(bulk.len(), looped.len());
        assert_eq!(bulk.pool().len(), looped.pool().len());
        for (tid, _) in &rows {
            let (rb, rl) = (bulk.row_of(*tid).unwrap(), looped.row_of(*tid).unwrap());
            for a in 0..2 {
                assert_eq!(bulk.value(rb, a), looped.value(rl, a));
                assert_eq!(bulk.pool().refs(bulk.sym(rb, a)), {
                    looped.pool().refs(looped.sym(rl, a))
                });
            }
        }
        // Deleting everything drains the dictionary — refcounts balanced.
        for (tid, _) in &rows {
            bulk.delete(*tid).unwrap();
        }
        assert!(bulk.pool().is_empty());
    }

    #[test]
    fn bulk_load_validates_before_mutating() {
        let mut s = ColumnStore::new(2);
        s.insert(5, [&v("live"), &v("row")]).unwrap();
        let pool_before = s.pool().len();
        // Duplicate against the store.
        let dup_store = vec![(9, vec![v("x"), v("y")]), (5, vec![v("x"), v("y")])];
        assert!(matches!(
            s.bulk_load(&dup_store),
            Err(RelError::DuplicateTid(5))
        ));
        // Duplicate within the batch.
        let dup_batch = vec![(7, vec![v("x"), v("y")]), (7, vec![v("z"), v("w")])];
        assert!(matches!(
            s.bulk_load(&dup_batch),
            Err(RelError::DuplicateTid(7))
        ));
        // Arity mismatch anywhere in the batch.
        let bad_arity = vec![(8, vec![v("x"), v("y")]), (9, vec![v("only-one")])];
        assert!(matches!(
            s.bulk_load(&bad_arity),
            Err(RelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(s.len(), 1, "failed loads mutate nothing");
        assert_eq!(s.pool().len(), pool_before);
        // Loading after single inserts and vice versa stays consistent.
        s.bulk_load(&[(9, vec![v("x"), v("y")])]).unwrap();
        s.insert(10, [&v("x"), &v("tail")]).unwrap();
        assert_eq!(s.len(), 3);
        let order: Vec<Tid> = s.rows().map(|(t, _)| t).collect();
        assert_eq!(order, vec![5, 9, 10]);
    }

    #[test]
    fn projection_reads_are_positional() {
        let mut s = ColumnStore::new(3);
        s.insert(7, [&v("p"), &v("q"), &v("r")]).unwrap();
        let row = s.row_of(7).unwrap();
        let syms: Vec<Sym> = s.project_syms(row, &[2, 0]).collect();
        assert_eq!(syms, vec![s.sym(row, 2), s.sym(row, 0)]);
        let vals: Vec<&Value> = s.project_values(row, &[1]).collect();
        assert_eq!(vals, vec![&v("q")]);
        assert_eq!(s.row_syms(row).len(), 3);
        assert_eq!(s.tid_of(row), 7);
    }
}
