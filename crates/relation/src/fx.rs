//! A small Fx-style hasher.
//!
//! The offline crate set does not include `rustc-hash`, but the hot paths of
//! the detectors are dominated by hash-map probes on short keys (tuple ids,
//! eqids, small value vectors). This module reimplements the well-known Fx
//! algorithm (the `rustc` hasher): multiply-xor over machine words. It is not
//! HashDoS-resistant; none of the inputs here are attacker controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn unaligned_bytes_hash() {
        // 9 bytes exercises both the word loop and the remainder path.
        assert_ne!(hash_of(&[0u8; 9].as_slice()), hash_of(&[1u8; 9].as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
        assert!(!s.contains("y"));
    }
}
