//! Relational substrate for the incremental distributed CFD violation
//! detector (Fan, Li, Tang, Yu — ICDE 2012 / TKDE 2014).
//!
//! This crate provides everything "below" the detection algorithms:
//!
//! * [`Value`] — the attribute value domain (integers and strings),
//! * [`Schema`] / [`Attribute`] — relation schemas with a designated key,
//! * [`Tuple`] / [`Relation`] — keyed tuple storage over the columnar
//!   arena of [`store`] ([`ColumnStore`]: per-attribute `Vec<Sym>` columns,
//!   free-list row reuse, dense `Tid ↔ RowId` map),
//! * [`Update`] / [`UpdateBatch`] — the update model `ΔD` (insertions and
//!   deletions, with same-tid cancellation, `ΔD⁺`, `ΔD⁻`, and `D ⊕ ΔD`),
//! * [`predicate`] — Boolean selection predicates used to define horizontal
//!   fragments, including the `F_i ∧ F_φ` satisfiability test of §6,
//! * [`fx`] — a small Fx-style hasher used for all hot hash maps,
//! * [`intern`] — the reference-counted value dictionary ([`ValuePool`])
//!   mapping values to fixed-size symbols, and the dictionary-encoded
//!   tuple representation ([`SymTuple`]),
//! * [`smallvec`] — a tiny inline vector for short hot-path keys.
//!
//! The crate is deliberately free of any distribution or CFD logic so that it
//! can be reused by the partitioners, the detectors and the workload
//! generators alike.

pub mod csv;
pub mod fx;
pub mod intern;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod smallvec;
pub mod store;
pub mod tuple;
pub mod update;
pub mod value;

pub use crate::relation::Relation;
pub use fx::{FxHashMap, FxHashSet};
pub use intern::{InternCache, Sym, SymTuple, ValuePool};
pub use predicate::Predicate;
pub use schema::{AttrId, Attribute, Schema};
pub use smallvec::SmallVec;
pub use store::{ColumnStore, RowId, TidMap};
pub use tuple::{Tid, Tuple};
pub use update::{Update, UpdateBatch};
pub use value::Value;

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A tuple's arity does not match its schema.
    ArityMismatch { expected: usize, got: usize },
    /// An unknown attribute name was referenced.
    UnknownAttribute(String),
    /// A tuple id was inserted twice.
    DuplicateTid(Tid),
    /// A tuple id was deleted or referenced but does not exist.
    MissingTid(Tid),
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            RelError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            RelError::DuplicateTid(t) => write!(f, "duplicate tuple id {t}"),
            RelError::MissingTid(t) => write!(f, "missing tuple id {t}"),
        }
    }
}

impl std::error::Error for RelError {}
