//! The update model `ΔD` (§3).
//!
//! A batch update is a list of tuple insertions and deletions; a modification
//! is a deletion followed by an insertion. [`UpdateBatch::normalize`]
//! implements line 1 of `incVer`/`incHor`: updates on the same tuple id that
//! cancel each other (insert then delete of a tid not in `D`, or delete then
//! re-insert of an identical tuple) are removed before detection.

use crate::relation::Relation;
use crate::tuple::{Tid, Tuple};
use crate::RelError;

/// A single update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a full tuple.
    Insert(Tuple),
    /// Delete the tuple with this id.
    Delete(Tid),
}

impl Update {
    /// The tuple id this update concerns.
    pub fn tid(&self) -> Tid {
        match self {
            Update::Insert(t) => t.tid,
            Update::Delete(tid) => *tid,
        }
    }

    /// Is this an insertion?
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

/// A batch update `ΔD`: an ordered list of insertions and deletions.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: Vec<Update>,
}

impl UpdateBatch {
    /// Empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Build from a list of updates.
    pub fn from_ops(ops: Vec<Update>) -> Self {
        UpdateBatch { ops }
    }

    /// Append an insertion.
    pub fn insert(&mut self, t: Tuple) {
        self.ops.push(Update::Insert(t));
    }

    /// Append a deletion.
    pub fn delete(&mut self, tid: Tid) {
        self.ops.push(Update::Delete(tid));
    }

    /// All operations in order.
    pub fn ops(&self) -> &[Update] {
        &self.ops
    }

    /// Number of operations (`|ΔD|`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The insertion sub-list `ΔD⁺` (post-normalization order preserved).
    pub fn insertions(&self) -> impl Iterator<Item = &Tuple> {
        self.ops.iter().filter_map(|u| match u {
            Update::Insert(t) => Some(t),
            Update::Delete(_) => None,
        })
    }

    /// The deletion sub-list `ΔD⁻`.
    pub fn deletions(&self) -> impl Iterator<Item = Tid> + '_ {
        self.ops.iter().filter_map(|u| match u {
            Update::Delete(tid) => Some(*tid),
            Update::Insert(_) => None,
        })
    }

    /// Remove updates with the same tuple id that cancel each other
    /// (`incVer` line 1). For each tid, the *net effect* relative to `D` is
    /// kept:
    ///
    /// * tid absent from `D`, net effect "inserted as t" → single `Insert(t)`;
    /// * tid present in `D`, net effect "deleted" → single `Delete`;
    /// * tid present, net effect "replaced by t" → `Delete` then `Insert(t)`
    ///   (a modification);
    /// * no net effect → nothing.
    pub fn normalize(&self, base: &Relation) -> UpdateBatch {
        use crate::fx::FxHashMap;
        // Last-writer-wins state per tid, in first-touch order.
        #[derive(Clone)]
        enum Net {
            Inserted(Tuple),
            Deleted,
        }
        let mut order: Vec<Tid> = Vec::new();
        let mut state: FxHashMap<Tid, Net> = FxHashMap::default();
        for op in &self.ops {
            let tid = op.tid();
            if !state.contains_key(&tid) {
                order.push(tid);
            }
            match op {
                Update::Insert(t) => {
                    state.insert(tid, Net::Inserted(t.clone()));
                }
                Update::Delete(_) => {
                    state.insert(tid, Net::Deleted);
                }
            }
        }
        let mut out = UpdateBatch::new();
        for tid in order {
            let present = base.contains(tid);
            match state.remove(&tid).expect("state populated above") {
                Net::Inserted(t) => {
                    if present {
                        // Modification: only emit if the value actually
                        // changed (compared against the store's borrowed
                        // values — no materialization).
                        let unchanged = t.arity() == base.schema().arity()
                            && t.values
                                .iter()
                                .enumerate()
                                .all(|(a, v)| base.value_at(tid, a as crate::AttrId) == Some(v));
                        if !unchanged {
                            out.delete(tid);
                            out.insert(t);
                        }
                    } else {
                        out.insert(t);
                    }
                }
                Net::Deleted => {
                    if present {
                        out.delete(tid);
                    }
                    // else: insert+delete of a new tid cancels entirely.
                }
            }
        }
        out
    }

    /// Apply this batch to `base` (`D ⊕ ΔD`), consuming nothing. Deletions of
    /// missing tids and duplicate insertions are errors — callers should
    /// normalize first.
    pub fn apply(&self, base: &mut Relation) -> Result<(), RelError> {
        for op in &self.ops {
            match op {
                Update::Insert(t) => base.insert(t.clone())?,
                Update::Delete(tid) => {
                    base.delete(*tid)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel_with(tids: &[Tid]) -> Relation {
        let s = Schema::new("R", &["id", "a"], "id").unwrap();
        let mut r = Relation::new(s);
        for &tid in tids {
            r.insert(Tuple::new(tid, vec![Value::int(tid as i64), Value::int(0)]))
                .unwrap();
        }
        r
    }

    fn tup(tid: Tid, a: i64) -> Tuple {
        Tuple::new(tid, vec![Value::int(tid as i64), Value::int(a)])
    }

    #[test]
    fn plus_minus_split() {
        let mut b = UpdateBatch::new();
        b.insert(tup(10, 1));
        b.delete(3);
        b.insert(tup(11, 2));
        assert_eq!(b.insertions().count(), 2);
        assert_eq!(b.deletions().collect::<Vec<_>>(), vec![3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn normalize_cancels_insert_then_delete_of_new_tid() {
        let base = rel_with(&[1]);
        let mut b = UpdateBatch::new();
        b.insert(tup(99, 5));
        b.delete(99);
        let n = b.normalize(&base);
        assert!(n.is_empty());
    }

    #[test]
    fn normalize_delete_then_identical_reinsert_cancels() {
        let base = rel_with(&[1]);
        let mut b = UpdateBatch::new();
        b.delete(1);
        b.insert(tup(1, 0)); // identical to the stored tuple
        let n = b.normalize(&base);
        assert!(n.is_empty());
    }

    #[test]
    fn normalize_modification_becomes_delete_insert() {
        let base = rel_with(&[1]);
        let mut b = UpdateBatch::new();
        b.delete(1);
        b.insert(tup(1, 7));
        let n = b.normalize(&base);
        assert_eq!(n.ops().len(), 2);
        assert!(matches!(n.ops()[0], Update::Delete(1)));
        assert!(matches!(&n.ops()[1], Update::Insert(t) if t.get(1) == &Value::int(7)));
    }

    #[test]
    fn normalize_keeps_last_write() {
        let base = rel_with(&[]);
        let mut b = UpdateBatch::new();
        b.insert(tup(9, 1));
        b.delete(9);
        b.insert(tup(9, 2));
        let n = b.normalize(&base);
        assert_eq!(n.ops().len(), 1);
        assert!(matches!(&n.ops()[0], Update::Insert(t) if t.get(1) == &Value::int(2)));
    }

    #[test]
    fn normalize_drops_delete_of_missing_tid() {
        let base = rel_with(&[]);
        let mut b = UpdateBatch::new();
        b.delete(42);
        assert!(b.normalize(&base).is_empty());
    }

    #[test]
    fn apply_produces_d_oplus_delta() {
        let mut base = rel_with(&[1, 2]);
        let mut b = UpdateBatch::new();
        b.delete(2);
        b.insert(tup(3, 9));
        b.normalize(&base).apply(&mut base).unwrap();
        assert!(base.contains(1));
        assert!(!base.contains(2));
        assert!(base.contains(3));
    }
}
