//! Selection predicates for horizontal fragmentation (§2.2, §6).
//!
//! A horizontal fragment is `D_i = σ_{F_i}(D)` for a Boolean predicate `F_i`.
//! The detector needs two operations on predicates:
//!
//! * evaluation against a tuple (to route updates to fragments), and
//! * the *local-checkability* test of §6: a variable CFD `φ` with pattern
//!   conjunction `F_φ` (the constant atoms of `t_p[X]`) can be checked without
//!   shipment at fragment `i` when `F_i ∧ F_φ` is unsatisfiable, or when the
//!   attributes of `F_i` are contained in `X` (equal `X_{F_i}` values force
//!   co-location of any violating pair).

use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;

/// A Boolean selection predicate over tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (the single-fragment degenerate case).
    True,
    /// `attr = value`.
    Eq(AttrId, Value),
    /// `attr ∈ {values}` (e.g. `grade ∈ {'A','B'}`).
    In(AttrId, Vec<Value>),
    /// `lo ≤ attr < hi` over integer values; non-integers never match.
    IntRange(AttrId, i64, i64),
    /// `hash(attr) mod buckets == which` — hash partitioning.
    HashMod {
        /// Attribute hashed.
        attr: AttrId,
        /// Number of buckets.
        buckets: u32,
        /// Bucket selected by this predicate.
        which: u32,
    },
    /// Conjunction.
    And(Vec<Predicate>),
}

fn stable_hash(v: &Value) -> u64 {
    // FNV-1a over the digest byte encoding: stable across runs/platforms,
    // which keeps experiment partitions reproducible.
    let mut bytes = Vec::with_capacity(16);
    v.digest_bytes(&mut bytes);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Predicate {
    /// Evaluate against a full tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        self.eval_with(&|a| t.get(a))
    }

    /// Evaluate against any positional value accessor — lets columnar
    /// callers route rows without materializing a [`Tuple`].
    pub fn eval_with<'a>(&self, get: &impl Fn(AttrId) -> &'a Value) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(a, v) => get(*a) == v,
            Predicate::In(a, vs) => vs.contains(get(*a)),
            Predicate::IntRange(a, lo, hi) => match get(*a) {
                Value::Int(i) => lo <= i && i < hi,
                _ => false,
            },
            Predicate::HashMod {
                attr,
                buckets,
                which,
            } => (stable_hash(get(*attr)) % *buckets as u64) as u32 == *which,
            Predicate::And(ps) => ps.iter().all(|p| p.eval_with(get)),
        }
    }

    /// Attributes mentioned by this predicate (`X_{F_i}` in §6).
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<AttrId>) {
        match self {
            Predicate::True => {}
            Predicate::Eq(a, _) | Predicate::In(a, _) | Predicate::IntRange(a, _, _) => {
                out.push(*a);
            }
            Predicate::HashMod { attr, .. } => out.push(*attr),
            Predicate::And(ps) => ps.iter().for_each(|p| p.collect_attrs(out)),
        }
    }

    /// Conservative unsatisfiability test for `F_i ∧ F_φ` where `F_φ` is a
    /// conjunction of equality atoms `attr = const` (the constant pattern
    /// atoms of a CFD). Returns `true` only when the conjunction provably has
    /// no satisfying tuple; `false` means "possibly satisfiable".
    pub fn conflicts_with_atoms(&self, atoms: &[(AttrId, Value)]) -> bool {
        match self {
            Predicate::True => false,
            Predicate::Eq(a, v) => atoms.iter().any(|(b, w)| b == a && w != v),
            Predicate::In(a, vs) => atoms.iter().any(|(b, w)| b == a && !vs.contains(w)),
            Predicate::IntRange(a, lo, hi) => atoms.iter().any(|(b, w)| {
                b == a
                    && match w {
                        Value::Int(i) => !(lo <= i && i < hi),
                        _ => true, // non-integer constant can never be in range
                    }
            }),
            Predicate::HashMod {
                attr,
                buckets,
                which,
            } => atoms
                .iter()
                .any(|(b, w)| b == attr && (stable_hash(w) % *buckets as u64) as u32 != *which),
            Predicate::And(ps) => ps.iter().any(|p| p.conflicts_with_atoms(atoms)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(1, vals)
    }

    #[test]
    fn eq_and_in() {
        let p = Predicate::Eq(0, Value::str("A"));
        assert!(p.eval(&t(vec![Value::str("A")])));
        assert!(!p.eval(&t(vec![Value::str("B")])));
        let q = Predicate::In(0, vec![Value::str("A"), Value::str("B")]);
        assert!(q.eval(&t(vec![Value::str("B")])));
        assert!(!q.eval(&t(vec![Value::str("C")])));
    }

    #[test]
    fn int_range() {
        let p = Predicate::IntRange(0, 10, 20);
        assert!(p.eval(&t(vec![Value::int(10)])));
        assert!(p.eval(&t(vec![Value::int(19)])));
        assert!(!p.eval(&t(vec![Value::int(20)])));
        assert!(!p.eval(&t(vec![Value::str("10")])));
    }

    #[test]
    fn hash_mod_partitions_every_value_exactly_once() {
        let buckets = 4u32;
        for i in 0..100i64 {
            let tup = t(vec![Value::int(i)]);
            let matched = (0..buckets)
                .filter(|&which| {
                    Predicate::HashMod {
                        attr: 0,
                        buckets,
                        which,
                    }
                    .eval(&tup)
                })
                .count();
            assert_eq!(matched, 1, "value {i} must land in exactly one bucket");
        }
    }

    #[test]
    fn and_conjunction() {
        let p = Predicate::And(vec![
            Predicate::Eq(0, Value::str("A")),
            Predicate::IntRange(1, 0, 5),
        ]);
        assert!(p.eval(&t(vec![Value::str("A"), Value::int(3)])));
        assert!(!p.eval(&t(vec![Value::str("A"), Value::int(7)])));
    }

    #[test]
    fn attrs_collected_sorted_deduped() {
        let p = Predicate::And(vec![
            Predicate::Eq(3, Value::int(1)),
            Predicate::Eq(1, Value::int(2)),
            Predicate::Eq(3, Value::int(1)),
        ]);
        assert_eq!(p.attrs(), vec![1, 3]);
        assert!(Predicate::True.attrs().is_empty());
    }

    #[test]
    fn conflict_detection_for_local_checkability() {
        // Fragment holds grade='A'; CFD pattern forces grade='B' → unsat.
        let frag = Predicate::Eq(0, Value::str("A"));
        assert!(frag.conflicts_with_atoms(&[(0, Value::str("B"))]));
        assert!(!frag.conflicts_with_atoms(&[(0, Value::str("A"))]));
        // Pattern on another attribute never conflicts.
        assert!(!frag.conflicts_with_atoms(&[(1, Value::str("B"))]));
        // Range fragment vs out-of-range constant.
        let r = Predicate::IntRange(2, 0, 10);
        assert!(r.conflicts_with_atoms(&[(2, Value::int(15))]));
        assert!(!r.conflicts_with_atoms(&[(2, Value::int(5))]));
        // In-list fragment.
        let l = Predicate::In(1, vec![Value::str("B"), Value::str("C")]);
        assert!(l.conflicts_with_atoms(&[(1, Value::str("A"))]));
        assert!(!l.conflicts_with_atoms(&[(1, Value::str("C"))]));
    }
}
