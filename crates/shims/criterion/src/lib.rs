//! Offline drop-in subset of the `criterion` API.
//!
//! The container has no crates.io registry, so the workspace vendors the
//! slice of criterion the `bench` crate uses: groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched` and the two entry macros. It
//! is a plain timing harness — median of `sample_size` samples, no
//! statistics, no plots — sufficient to *run* the figures' measurement
//! loops and print comparable numbers.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! routine executes exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

/// How batched setup output is grouped (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// A `function / parameter` pair naming one measurement.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`, as criterion renders it.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

/// Measurement configuration shared by groups.
#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            config: self.config,
            _name: name,
            _parent: self,
        }
    }

    /// Measure a single function outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.config, &id.to_string(), &mut f);
    }
}

/// A group of measurements sharing configuration.
pub struct BenchmarkGroup<'a> {
    config: Config,
    _name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Measure a named closure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.config, &id.to_string(), &mut f);
    }

    /// Measure a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.config, &id.id, &mut |b| f(b, input));
    }

    /// End the group (criterion renders summaries here; the shim is a no-op).
    pub fn finish(self) {}
}

fn run_one(config: &Config, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: if config.test_mode {
            1
        } else {
            config.sample_size
        },
        warm_up: if config.test_mode {
            Duration::ZERO
        } else {
            config.warm_up
        },
        measurement: if config.test_mode {
            Duration::ZERO
        } else {
            config.measurement
        },
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<40} median {:>12.3?}  ({} samples)",
        Duration::from_nanos(median),
        b.samples.len()
    );
}

/// Per-measurement timing handle.
pub struct Bencher {
    samples: Vec<u64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Time `routine`, repeating until the sample and time budgets are met.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let started = Instant::now();
        for i in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed().as_nanos() as u64);
            if i > 0 && started.elapsed() > self.measurement {
                break;
            }
        }
    }

    /// Time `routine` over fresh `setup` output each iteration; only the
    /// routine is on the clock.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        for i in 0..self.sample_size.max(1) {
            let state = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(state));
            self.samples.push(t0.elapsed().as_nanos() as u64);
            if i > 0 && started.elapsed() > self.measurement {
                break;
            }
        }
    }
}

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
