//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The container has no crates.io registry, so the workspace vendors the
//! tiny slice of `rand` the workload generators use: a seedable `StdRng`,
//! `Rng::{random_range, random_bool}` and `seq::SliceRandom::shuffle`.
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! per seed, which is all the synthetic workloads need (they never claim
//! cryptographic or statistical-suite quality).

use std::ops::Range;

pub mod dist;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi` (panics on an empty range).
    fn sample_range(word: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(word: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((word as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(i32, i64, u32, u64, usize, isize);

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits → [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).random_range(0..u64::MAX) == c.random_range(0..u64::MAX)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = r.random_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
