//! Seeded skewed-key distributions (subset of `rand_distr`).
//!
//! The load-generation subsystem models production key popularity — a few
//! hot keys receiving most of the traffic — with a Zipf(θ) rank-frequency
//! law. The sampler precomputes the cumulative distribution once (floats
//! are confined to construction), scales it to `u64` fixed point, and
//! samples with one RNG word plus a binary search, so draws are
//! deterministic per seed and cheap enough for per-update use.

use crate::Rng;

/// A Zipf-distributed rank sampler over `0..n`: rank `i` is drawn with
/// probability proportional to `1 / (i + 1)^theta`.
///
/// `theta` around 1.0 is the classic "80/20" web-traffic skew; larger
/// values concentrate more mass on the lowest ranks. `theta == 0` is the
/// uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative weights scaled to `u64` fixed point;
    /// `cum[n - 1] == u64::MAX`.
    cum: Vec<u64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let weights: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).powf(-theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for w in &weights {
            acc += w;
            // Scale into u64 fixed point; the final entry is forced to the
            // maximum so every RNG word maps to some rank.
            cum.push(((acc / total) * u64::MAX as f64) as u64);
        }
        *cum.last_mut().expect("n > 0") = u64::MAX;
        Zipf { cum }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cum.len()
    }

    /// Draw one rank in `0..n` (0 is the hottest key).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let word = rng.next_u64();
        self.cum.partition_point(|&c| c < word)
    }

    /// Analytic probability mass of the `k` hottest ranks (`0..k`) — the
    /// value empirical draws converge to; exposed for shape tests and for
    /// documenting scenario skew.
    pub fn mass_of_top(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k.min(self.cum.len());
        self.cum[k - 1] as f64 / u64::MAX as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(1_000, 1.0);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(17, 1.3);
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 17);
        }
    }

    #[test]
    fn top_one_percent_receives_expected_mass() {
        // The satellite's distribution-shape check: over 1000 ranks at
        // θ=1.0 the hottest 1% (10 ranks) analytically hold
        // H(10)/H(1000) ≈ 39% of the mass; 200k seeded draws must land
        // within ±2 percentage points of the analytic value.
        let z = Zipf::new(1_000, 1.0);
        let expected = z.mass_of_top(10);
        assert!(
            (0.35..0.45).contains(&expected),
            "analytic top-1% mass {expected} out of the Zipf(1.0) ballpark"
        );
        let mut r = StdRng::seed_from_u64(99);
        const DRAWS: usize = 200_000;
        let hits = (0..DRAWS).filter(|_| z.sample(&mut r) < 10).count();
        let empirical = hits as f64 / DRAWS as f64;
        assert!(
            (empirical - expected).abs() < 0.02,
            "empirical top-1% mass {empirical} vs analytic {expected}"
        );
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "uniform-ish draw, got {c}");
        }
    }

    #[test]
    fn higher_theta_concentrates_mass() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 2.0);
        assert!(steep.mass_of_top(1) > flat.mass_of_top(1));
        assert!(steep.mass_of_top(5) > flat.mass_of_top(5));
    }
}
