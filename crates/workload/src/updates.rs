//! Batch-update generation (§7): *"Batch updates contain 80% insertions
//! and 20% deletions, since insertions happen more often than deletions in
//! practice."* Exp-10 uses 60% insertions / 40% deletions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relation::{Relation, Tid, Tuple, UpdateBatch};

/// Mix of insertions vs. deletions.
#[derive(Debug, Clone, Copy)]
pub struct UpdateMix {
    /// Fraction of insertions in the batch (0.8 in most experiments).
    pub insert_fraction: f64,
}

impl Default for UpdateMix {
    fn default() -> Self {
        UpdateMix {
            insert_fraction: 0.8,
        }
    }
}

/// Generate a batch of `n` updates against `base`: deletions draw existing
/// tids without replacement, insertions come from `fresh` (pre-generated
/// new tuples — see `tpch::generate_fresh` / `dblp::generate_fresh`).
///
/// The interleaving is shuffled deterministically so insert/delete
/// processing order is realistic rather than phase-separated.
///
/// # Panics
/// Panics when `fresh` holds fewer tuples than the insertions requested or
/// `base` holds fewer tuples than the deletions requested.
pub fn generate(
    base: &Relation,
    fresh: &[Tuple],
    n: usize,
    mix: UpdateMix,
    seed: u64,
) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_ins = ((n as f64) * mix.insert_fraction).round() as usize;
    let n_del = n - n_ins;
    assert!(
        fresh.len() >= n_ins,
        "need {n_ins} fresh tuples, got {}",
        fresh.len()
    );
    assert!(
        base.len() >= n_del,
        "need {n_del} deletable tuples, base has {}",
        base.len()
    );

    // Sample deletions without replacement.
    let mut tids: Vec<Tid> = base.tids().collect();
    tids.shuffle(&mut rng);
    tids.truncate(n_del);

    #[derive(Clone)]
    enum Op {
        Ins(usize),
        Del(Tid),
    }
    let mut ops: Vec<Op> = (0..n_ins)
        .map(Op::Ins)
        .chain(tids.into_iter().map(Op::Del))
        .collect();
    ops.shuffle(&mut rng);

    let mut batch = UpdateBatch::new();
    for op in ops {
        match op {
            Op::Ins(i) => batch.insert(fresh[i].clone()),
            Op::Del(tid) => batch.delete(tid),
        }
    }
    batch
}

/// Convenience for "modification-heavy" workloads: `n` modifications that
/// re-insert an existing tuple with one attribute rewritten by `mutate`.
pub fn generate_modifications(
    base: &Relation,
    n: usize,
    seed: u64,
    mutate: impl Fn(&Tuple, &mut StdRng) -> Tuple,
) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tids: Vec<Tid> = base.tids().collect();
    tids.shuffle(&mut rng);
    tids.truncate(n);
    let mut batch = UpdateBatch::new();
    for tid in tids {
        let t = base.get(tid).expect("sampled live tid");
        let t2 = mutate(&t, &mut rng);
        assert_eq!(t2.tid, tid, "modification must keep the tuple id");
        batch.delete(tid);
        batch.insert(t2);
    }
    batch
}

/// Delete-then-reinsert-same-tid churn: `n` randomly chosen live tuples
/// are each deleted and immediately re-inserted *in the same batch*. A
/// `mutate_fraction` of the pairs come back rewritten by `mutate` (a
/// modification); the rest re-insert the identical tuple, so
/// [`UpdateBatch::normalize`] cancels them entirely and every detector's
/// `DeltaV` must settle them to a no-op. This is the hostile case for the
/// remove-then-re-add bookkeeping: the tid leaves and re-enters every
/// index within one `ΔD`.
///
/// The emitted batch is valid *sequentially* too (each delete precedes its
/// re-insert), so drivers that time single-update applies can split it.
///
/// # Panics
/// Panics when `base` holds fewer than `n` tuples or `mutate` changes a
/// tuple's id.
pub fn generate_churn(
    base: &Relation,
    n: usize,
    mutate_fraction: f64,
    seed: u64,
    mutate: impl Fn(&Tuple, &mut StdRng) -> Tuple,
) -> UpdateBatch {
    assert!(
        base.len() >= n,
        "need {n} churnable tuples, base has {}",
        base.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tids: Vec<Tid> = base.tids().collect();
    tids.shuffle(&mut rng);
    tids.truncate(n);
    let mut batch = UpdateBatch::new();
    for tid in tids {
        let t = base.get(tid).expect("sampled live tid");
        batch.delete(tid);
        if rng.random_bool(mutate_fraction) {
            let t2 = mutate(&t, &mut rng);
            assert_eq!(t2.tid, tid, "churn must re-insert the same tuple id");
            batch.insert(t2);
        } else {
            batch.insert(t);
        }
    }
    batch
}

/// Deterministically corrupt one attribute of a tuple (used by example
/// binaries and tests to create violations on demand).
pub fn corrupt_attr(t: &Tuple, attr: relation::AttrId, rng: &mut StdRng) -> Tuple {
    let mut vals: Vec<relation::Value> = t.values.to_vec();
    vals[attr as usize] = relation::Value::str(format!("ERR_{}", rng.random_range(0..1_000_000)));
    Tuple::new(t.tid, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{self, TpchConfig};

    #[test]
    fn respects_mix_and_determinism() {
        let cfg = TpchConfig {
            n_rows: 500,
            ..TpchConfig::default()
        };
        let (_, d) = tpch::generate(&cfg);
        let fresh = tpch::generate_fresh(&cfg, 10_000, 400, 99);
        let b1 = generate(&d, &fresh, 500, UpdateMix::default(), 5);
        let b2 = generate(&d, &fresh, 500, UpdateMix::default(), 5);
        assert_eq!(b1.ops().len(), 500);
        assert_eq!(b1.insertions().count(), 400);
        assert_eq!(b1.deletions().count(), 100);
        assert_eq!(format!("{b1:?}"), format!("{b2:?}"));
    }

    #[test]
    fn deletions_are_unique_and_live() {
        let cfg = TpchConfig {
            n_rows: 100,
            ..TpchConfig::default()
        };
        let (_, d) = tpch::generate(&cfg);
        let fresh = tpch::generate_fresh(&cfg, 10_000, 0, 1);
        let b = generate(
            &d,
            &fresh,
            50,
            UpdateMix {
                insert_fraction: 0.0,
            },
            2,
        );
        let dels: Vec<Tid> = b.deletions().collect();
        let mut uniq = dels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(dels.len(), uniq.len());
        assert!(dels.iter().all(|&t| d.contains(t)));
    }

    #[test]
    fn modifications_keep_tids() {
        let cfg = TpchConfig {
            n_rows: 50,
            ..TpchConfig::default()
        };
        let (s, d) = tpch::generate(&cfg);
        let region = s.attr_id("region").unwrap();
        let b = generate_modifications(&d, 10, 3, |t, rng| corrupt_attr(t, region, rng));
        assert_eq!(b.ops().len(), 20); // delete + insert each
        let mut base = d.clone();
        b.normalize(&base.clone()).apply(&mut base).unwrap();
        assert_eq!(base.len(), d.len());
    }

    #[test]
    fn churn_is_deterministic_and_pairwise() {
        let cfg = TpchConfig {
            n_rows: 300,
            ..TpchConfig::default()
        };
        let (s, d) = tpch::generate(&cfg);
        let region = s.attr_id("region").unwrap();
        let b1 = generate_churn(&d, 60, 0.5, 9, |t, rng| corrupt_attr(t, region, rng));
        let b2 = generate_churn(&d, 60, 0.5, 9, |t, rng| corrupt_attr(t, region, rng));
        assert_eq!(format!("{b1:?}"), format!("{b2:?}"));
        assert_eq!(b1.ops().len(), 120);
        // Pairs are adjacent: delete(tid) immediately followed by
        // insert(same tid) — the sequential-validity contract.
        for pair in b1.ops().chunks(2) {
            match (&pair[0], &pair[1]) {
                (relation::Update::Delete(tid), relation::Update::Insert(t)) => {
                    assert_eq!(*tid, t.tid);
                }
                other => panic!("expected delete-then-reinsert pair, got {other:?}"),
            }
        }
    }

    #[test]
    fn identical_churn_normalizes_away() {
        let cfg = TpchConfig {
            n_rows: 200,
            ..TpchConfig::default()
        };
        let (_, d) = tpch::generate(&cfg);
        let b = generate_churn(&d, 50, 0.0, 4, |t, _| t.clone());
        assert_eq!(b.ops().len(), 100);
        assert!(
            b.normalize(&d).is_empty(),
            "identical delete+reinsert pairs must cancel entirely"
        );
        // Applying the raw batch sequentially is also a round trip.
        let mut d2 = d.clone();
        b.apply(&mut d2).unwrap();
        assert_eq!(d2.len(), d.len());
    }

    #[test]
    fn mutated_churn_normalizes_to_modifications() {
        let cfg = TpchConfig {
            n_rows: 200,
            ..TpchConfig::default()
        };
        let (s, d) = tpch::generate(&cfg);
        let region = s.attr_id("region").unwrap();
        let b = generate_churn(&d, 40, 1.0, 5, |t, rng| corrupt_attr(t, region, rng));
        let n = b.normalize(&d);
        // Every pair survives as a delete+insert modification of the same
        // tid (corrupt_attr always changes the value).
        assert_eq!(n.ops().len(), 80);
        assert_eq!(n.insertions().count(), 40);
        let mut d2 = d.clone();
        n.apply(&mut d2).unwrap();
        assert_eq!(d2.len(), d.len());
    }

    #[test]
    fn applying_batch_keeps_relation_consistent() {
        let cfg = TpchConfig {
            n_rows: 200,
            ..TpchConfig::default()
        };
        let (_, d) = tpch::generate(&cfg);
        let fresh = tpch::generate_fresh(&cfg, 10_000, 80, 4);
        let b = generate(&d, &fresh, 100, UpdateMix::default(), 6);
        let mut d2 = d.clone();
        b.normalize(&d).apply(&mut d2).unwrap();
        assert_eq!(d2.len(), 200 + 80 - 20);
    }
}
