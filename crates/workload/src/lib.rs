//! Workload generators for the experiment harness.
//!
//! * [`emp`] — the paper's running example: the EMP relation of Fig. 2,
//!   the two CFDs of Fig. 1, and the vertical/horizontal partitions used
//!   throughout §1–§6.
//! * [`tpch`] — a deterministic synthetic stand-in for the paper's joined
//!   TPCH relation (one wide denormalized order table with hierarchical
//!   attributes and seeded errors). See DESIGN.md for the substitution
//!   rationale.
//! * [`dblp`] — a synthetic bibliographic relation standing in for the
//!   paper's 320 MB DBLP extract.
//! * [`rules`] — CFD generation following the paper's methodology:
//!   "we first designed FDs, and then produced CFDs by adding patterns".
//! * [`family`] — seeded synthetic CFD families with a controllable
//!   LHS-overlap dial, for sweeping `|Σ|` under operator sharing.
//! * [`updates`] — batch-update generation (the paper uses 80% insertions
//!   / 20% deletions by default; Exp-10 uses 60/40).

pub mod dblp;
pub mod emp;
pub mod family;
pub mod rules;
pub mod tpch;
pub mod updates;
