//! A synthetic bibliographic relation standing in for the paper's DBLP
//! extract (320 MB of XML flattened to 100k–500k tuples).
//!
//! The dependency structure mirrors what a flattened DBLP gives you:
//! venue keys determine venue names and publishers, (venue, volume)
//! determines the year, paper keys determine titles. Errors are injected
//! at a configurable rate.

use cluster::partition::{HorizontalScheme, VerticalScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{Relation, Schema, Tid, Tuple, Value};
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of tuples.
    pub n_rows: usize,
    /// Distinct venues.
    pub n_venues: usize,
    /// Distinct authors.
    pub n_authors: usize,
    /// Corruption probability per tuple.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            n_rows: 5_000,
            n_venues: 200,
            n_authors: 2_000,
            error_rate: 0.02,
            seed: 7,
        }
    }
}

/// The flattened publication schema.
pub fn dblp_schema() -> Arc<Schema> {
    Schema::new(
        "PUBS",
        &[
            "pid", // key
            "author",
            "title",
            "venuekey",
            "venue",
            "publisher",
            "volume",
            "year",
            "pages",
            "etype",
        ],
        "pid",
    )
    .expect("DBLP schema is valid")
}

/// Ground-truth functions for the venue hierarchy.
pub mod truth {
    /// Venue name of a venue key.
    pub fn venue_name(venuekey: i64) -> String {
        format!("VENUE_{venuekey:04}")
    }

    /// Publisher of a venue.
    pub fn publisher_of_venue(venuekey: i64) -> String {
        format!("PUBLISHER_{}", (venuekey % 20).abs())
    }

    /// Year of (venue, volume).
    pub fn year_of_volume(venuekey: i64, volume: i64) -> i64 {
        1970 + ((venuekey * 7 + volume) % 55).abs()
    }
}

const ETYPES: [&str; 4] = ["article", "inproceedings", "book", "phdthesis"];

fn gen_tuple(tid: Tid, cfg: &DblpConfig, rng: &mut StdRng) -> Tuple {
    let venuekey = rng.random_range(0..cfg.n_venues as i64);
    let volume = rng.random_range(1..60i64);
    let author = format!("Author_{:05}", rng.random_range(0..cfg.n_authors));
    let title = format!("Title of paper {tid}");
    let mut venue = truth::venue_name(venuekey);
    let mut publisher = truth::publisher_of_venue(venuekey);
    let mut year = truth::year_of_volume(venuekey, volume);

    if rng.random_bool(cfg.error_rate) {
        match rng.random_range(0..3) {
            0 => venue = format!("VENUE_ERR{}", rng.random_range(0..100)),
            1 => publisher = format!("PUBLISHER_ERR{}", rng.random_range(0..10)),
            _ => year = 1900 + rng.random_range(0..70),
        }
    }

    Tuple::new(
        tid,
        vec![
            Value::int(tid as i64),
            Value::str(author),
            Value::str(title),
            Value::int(venuekey),
            Value::str(venue),
            Value::str(publisher),
            Value::int(volume),
            Value::int(year),
            Value::str(format!("{}-{}", volume * 10, volume * 10 + 9)),
            Value::str(ETYPES[rng.random_range(0..ETYPES.len())]),
        ],
    )
}

/// Generate the base relation.
pub fn generate(cfg: &DblpConfig) -> (Arc<Schema>, Relation) {
    let schema = dblp_schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut d = Relation::new(schema.clone());
    for tid in 0..cfg.n_rows as Tid {
        d.insert(gen_tuple(tid, cfg, &mut rng)).expect("fresh tids");
    }
    (schema, d)
}

/// Generate `n` fresh tuples with tids from `start` (for insertions).
pub fn generate_fresh(cfg: &DblpConfig, start: Tid, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as Tid)
        .map(|i| gen_tuple(start + i, cfg, &mut rng))
        .collect()
}

/// Default vertical scheme over `n` sites.
pub fn vertical_scheme(schema: &Arc<Schema>, n: usize) -> VerticalScheme {
    VerticalScheme::round_robin(schema.clone(), n).expect("round robin covers schema")
}

/// Default horizontal scheme: hash on the key over `n` sites.
pub fn horizontal_scheme(schema: &Arc<Schema>, n: usize) -> HorizontalScheme {
    HorizontalScheme::by_hash(schema.clone(), schema.key(), n).expect("hash scheme")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = DblpConfig {
            n_rows: 300,
            ..DblpConfig::default()
        };
        let (_, a) = generate(&cfg);
        let (_, b) = generate(&cfg);
        assert_eq!(a.len(), 300);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn clean_data_satisfies_rules() {
        let cfg = DblpConfig {
            n_rows: 500,
            error_rate: 0.0,
            ..DblpConfig::default()
        };
        let (s, d) = generate(&cfg);
        let rules = crate::rules::dblp_rules(&s, 8, 3);
        let v = cfd::naive::detect(&rules, &d);
        assert!(v.is_empty());
    }

    #[test]
    fn errors_create_violations() {
        let cfg = DblpConfig {
            n_rows: 3000,
            error_rate: 0.1,
            ..DblpConfig::default()
        };
        let (s, d) = generate(&cfg);
        let rules = crate::rules::dblp_rules(&s, 8, 3);
        assert!(!cfd::naive::detect(&rules, &d).is_empty());
    }
}
