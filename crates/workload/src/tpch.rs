//! A deterministic synthetic stand-in for the paper's TPCH workload.
//!
//! The paper joins all TPCH tables into one wide relation (2M–10M tuples,
//! up to 10 GB) and detects CFD violations on it. What the detectors care
//! about is the *dependency structure* of that join: hierarchical
//! attributes (customer → nation → region, part → brand/type, supplier →
//! nation) that genuinely obey FDs, plus a controlled rate of seeded errors
//! that break them. This generator reproduces exactly that shape at
//! laptop scale, deterministically from a seed.

use cluster::partition::{HorizontalScheme, VerticalScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{Relation, Schema, Tid, Tuple, Value};
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of tuples to generate.
    pub n_rows: usize,
    /// Distinct customers (controls group sizes of customer FDs).
    pub n_customers: usize,
    /// Distinct parts.
    pub n_parts: usize,
    /// Distinct suppliers.
    pub n_suppliers: usize,
    /// Probability that a dependent attribute of a tuple is corrupted
    /// (creating CFD violations).
    pub error_rate: f64,
    /// RNG seed — same seed, same relation.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            n_rows: 10_000,
            n_customers: 500,
            n_parts: 300,
            n_suppliers: 100,
            error_rate: 0.02,
            seed: 42,
        }
    }
}

/// The denormalized order schema.
pub fn tpch_schema() -> Arc<Schema> {
    Schema::new(
        "ORDERS_WIDE",
        &[
            "okey", // key
            "custkey",
            "custname",
            "nationkey",
            "nation",
            "region",
            "mktsegment",
            "partkey",
            "brand",
            "ptype",
            "container",
            "suppkey",
            "suppnation",
            "shipmode",
            "orderpriority",
            "clerk",
        ],
        "okey",
    )
    .expect("TPCH schema is valid")
}

const N_NATIONS: usize = 25;
const N_REGIONS: usize = 5;
const SHIPMODES: [&str; 7] = ["AIR", "RAIL", "TRUCK", "MAIL", "SHIP", "FOB", "REG AIR"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPEC", "5-LOW"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Ground-truth hierarchy functions (the "clean" values). Exposed so rule
/// generators can build *constant* CFDs whose RHS is the true value.
pub mod truth {
    use super::*;

    /// Nation of a nation key.
    pub fn nation_name(nationkey: i64) -> String {
        format!("NATION_{nationkey:02}")
    }

    /// Region of a nation.
    pub fn region_of_nation(nationkey: i64) -> String {
        format!("REGION_{}", (nationkey as usize) % N_REGIONS)
    }

    /// Nation key of a customer.
    pub fn nation_of_cust(custkey: i64) -> i64 {
        (custkey % N_NATIONS as i64).abs()
    }

    /// Name of a customer.
    pub fn cust_name(custkey: i64) -> String {
        format!("Customer#{custkey:06}")
    }

    /// Market segment of a customer.
    pub fn segment_of_cust(custkey: i64) -> &'static str {
        SEGMENTS[(custkey as usize) % SEGMENTS.len()]
    }

    /// Brand of a part.
    pub fn brand_of_part(partkey: i64) -> String {
        format!("Brand#{}", (partkey % 45).abs() + 10)
    }

    /// Type of a part.
    pub fn type_of_part(partkey: i64) -> String {
        format!("TYPE_{}", (partkey % 150).abs())
    }

    /// Container of a part.
    pub fn container_of_part(partkey: i64) -> String {
        format!("CONTAINER_{}", (partkey % 40).abs())
    }

    /// Nation of a supplier.
    pub fn nation_of_supp(suppkey: i64) -> String {
        nation_name((suppkey % N_NATIONS as i64).abs())
    }
}

/// Generate one tuple with the given key. `corrupt` injects one random
/// dependent-attribute error when drawn.
fn gen_tuple(tid: Tid, cfg: &TpchConfig, rng: &mut StdRng) -> Tuple {
    let custkey = rng.random_range(0..cfg.n_customers as i64);
    let partkey = rng.random_range(0..cfg.n_parts as i64);
    let suppkey = rng.random_range(0..cfg.n_suppliers as i64);
    let nationkey = truth::nation_of_cust(custkey);

    let mut custname = truth::cust_name(custkey);
    let mut nation = truth::nation_name(nationkey);
    let mut region = truth::region_of_nation(nationkey);
    let mut segment = truth::segment_of_cust(custkey).to_string();
    let mut brand = truth::brand_of_part(partkey);
    let mut ptype = truth::type_of_part(partkey);
    let mut container = truth::container_of_part(partkey);
    let mut suppnation = truth::nation_of_supp(suppkey);

    if rng.random_bool(cfg.error_rate) {
        // Corrupt one dependent attribute — breaks at least one FD.
        match rng.random_range(0..8) {
            0 => custname = format!("Customer#ERR{}", rng.random_range(0..1000)),
            1 => nation = format!("NATION_ERR{}", rng.random_range(0..100)),
            2 => region = format!("REGION_ERR{}", rng.random_range(0..10)),
            3 => segment = "SEGMENT_ERR".to_string(),
            4 => brand = format!("Brand#ERR{}", rng.random_range(0..100)),
            5 => ptype = format!("TYPE_ERR{}", rng.random_range(0..100)),
            6 => container = format!("CONTAINER_ERR{}", rng.random_range(0..100)),
            _ => suppnation = format!("NATION_ERR{}", rng.random_range(0..100)),
        }
    }

    Tuple::new(
        tid,
        vec![
            Value::int(tid as i64),
            Value::int(custkey),
            Value::str(custname),
            Value::int(nationkey),
            Value::str(nation),
            Value::str(region),
            Value::str(segment),
            Value::int(partkey),
            Value::str(brand),
            Value::str(ptype),
            Value::str(container),
            Value::int(suppkey),
            Value::str(suppnation),
            Value::str(SHIPMODES[rng.random_range(0..SHIPMODES.len())]),
            Value::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
            Value::str(format!("Clerk#{:05}", rng.random_range(0..1000))),
        ],
    )
}

/// Generate the base relation.
pub fn generate(cfg: &TpchConfig) -> (Arc<Schema>, Relation) {
    let schema = tpch_schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut d = Relation::new(schema.clone());
    for tid in 0..cfg.n_rows as Tid {
        d.insert(gen_tuple(tid, cfg, &mut rng)).expect("fresh tids");
    }
    (schema, d)
}

/// Generate `n` fresh tuples with tids following `start` (for insertions).
pub fn generate_fresh(cfg: &TpchConfig, start: Tid, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as Tid)
        .map(|i| gen_tuple(start + i, cfg, &mut rng))
        .collect()
}

/// Default vertical scheme: non-key attributes dealt round-robin over `n`
/// sites (key replicated everywhere), like the paper's column partitions.
pub fn vertical_scheme(schema: &Arc<Schema>, n: usize) -> VerticalScheme {
    VerticalScheme::round_robin(schema.clone(), n).expect("round robin covers schema")
}

/// Default horizontal scheme: hash partitioning on the key over `n` sites.
pub fn horizontal_scheme(schema: &Arc<Schema>, n: usize) -> HorizontalScheme {
    HorizontalScheme::by_hash(schema.clone(), schema.key(), n).expect("hash scheme")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = TpchConfig {
            n_rows: 200,
            ..TpchConfig::default()
        };
        let (_, a) = generate(&cfg);
        let (_, b) = generate(&cfg);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let (_, c) = generate(&TpchConfig { seed: 7, ..cfg });
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn clean_data_satisfies_catalog_fds() {
        let cfg = TpchConfig {
            n_rows: 500,
            error_rate: 0.0,
            ..TpchConfig::default()
        };
        let (s, d) = generate(&cfg);
        let fds = crate::rules::tpch_rules(&s, 8, 1);
        let v = cfd::naive::detect(&fds, &d);
        assert!(
            v.is_empty(),
            "error-free data must satisfy the rule catalog, found {:?}",
            v.tids_sorted().len()
        );
    }

    #[test]
    fn errors_create_violations() {
        let cfg = TpchConfig {
            n_rows: 2000,
            error_rate: 0.1,
            ..TpchConfig::default()
        };
        let (s, d) = generate(&cfg);
        let fds = crate::rules::tpch_rules(&s, 16, 1);
        let v = cfd::naive::detect(&fds, &d);
        assert!(!v.is_empty(), "10% corruption must violate something");
    }

    #[test]
    fn schemes_cover_schema() {
        let s = tpch_schema();
        let vs = vertical_scheme(&s, 10);
        assert_eq!(vs.n_sites(), 10);
        let hs = horizontal_scheme(&s, 10);
        let cfg = TpchConfig {
            n_rows: 100,
            ..TpchConfig::default()
        };
        let (_, d) = generate(&cfg);
        let frags = hs.partition(&d).unwrap();
        assert_eq!(frags.iter().map(Relation::len).sum::<usize>(), 100);
    }
}
