//! The paper's running example: the EMP relation (Fig. 2), the CFDs of
//! Fig. 1, and the partitions used in Examples 1–9.

use cfd::Cfd;
use cluster::partition::{HorizontalScheme, VerticalScheme};
use relation::{Relation, Schema, Tid, Tuple, Value};
use std::sync::Arc;

/// The EMP schema:
/// `EMP(id, name, sex, grade, street, city, zip, CC, AC, phn, salary, hd)`.
pub fn emp_schema() -> Arc<Schema> {
    Schema::new(
        "EMP",
        &[
            "id", "name", "sex", "grade", "street", "city", "zip", "CC", "AC", "phn", "salary",
            "hd",
        ],
        "id",
    )
    .expect("EMP schema is valid")
}

#[allow(clippy::too_many_arguments)]
fn emp_tuple(
    tid: Tid,
    name: &str,
    sex: &str,
    grade: &str,
    street: &str,
    city: &str,
    zip: &str,
    cc: i64,
    ac: i64,
    phn: &str,
    salary: &str,
    hd: &str,
) -> Tuple {
    Tuple::new(
        tid,
        vec![
            Value::int(tid as i64),
            Value::str(name),
            Value::str(sex),
            Value::str(grade),
            Value::str(street),
            Value::str(city),
            Value::str(zip),
            Value::int(cc),
            Value::int(ac),
            Value::str(phn),
            Value::str(salary),
            Value::str(hd),
        ],
    )
}

/// The relation `D₀` of Fig. 2 (tuples t1–t5; see [`t6`] for the insert).
pub fn emp_relation() -> (Arc<Schema>, Relation) {
    let s = emp_schema();
    let mut d = Relation::new(s.clone());
    let rows = vec![
        emp_tuple(
            1,
            "Mike",
            "M",
            "A",
            "Mayfield",
            "NYC",
            "EH4 8LE",
            44,
            131,
            "8693784",
            "65k",
            "01/10/2005",
        ),
        emp_tuple(
            2,
            "Sam",
            "M",
            "A",
            "Preston",
            "EDI",
            "EH2 4HF",
            44,
            131,
            "8765432",
            "65k",
            "01/05/2009",
        ),
        emp_tuple(
            3,
            "Molina",
            "F",
            "B",
            "Mayfield",
            "EDI",
            "EH4 8LE",
            44,
            131,
            "3456789",
            "80k",
            "01/03/2010",
        ),
        emp_tuple(
            4,
            "Philip",
            "M",
            "B",
            "Mayfield",
            "EDI",
            "EH4 8LE",
            44,
            131,
            "2909209",
            "85k",
            "01/05/2010",
        ),
        emp_tuple(
            5,
            "Adam",
            "M",
            "C",
            "Crichton",
            "EDI",
            "EH4 8LE",
            44,
            131,
            "7478626",
            "120k",
            "01/05/1995",
        ),
    ];
    for t in rows {
        d.insert(t).expect("distinct tids");
    }
    (s, d)
}

/// The tuple t6 inserted in Example 2 / Fig. 2.
pub fn t6() -> Tuple {
    emp_tuple(
        6,
        "George",
        "M",
        "C",
        "Mayfield",
        "EDI",
        "EH4 8LE",
        44,
        131,
        "9595858",
        "120k",
        "01/07/1993",
    )
}

/// The CFDs of Fig. 1:
/// `φ1: ([CC=44, zip] → [street])` and
/// `φ2: ([CC=44, AC=131] → [city=EDI])`.
pub fn emp_cfds(schema: &Schema) -> Vec<Cfd> {
    vec![
        Cfd::from_names(
            0,
            schema,
            &[("CC", Some(Value::int(44))), ("zip", None)],
            ("street", None),
        )
        .expect("φ1 is well-formed"),
        Cfd::from_names(
            1,
            schema,
            &[("CC", Some(Value::int(44))), ("AC", Some(Value::int(131)))],
            ("city", Some(Value::str("EDI"))),
        )
        .expect("φ2 is well-formed"),
    ]
}

/// The vertical partition of Fig. 2: `DV1(name, sex, grade)`,
/// `DV2(street, city, zip)`, `DV3(CC, AC, phn, salary, hd)` — each with the
/// key replica.
pub fn emp_vertical_scheme(schema: &Arc<Schema>) -> VerticalScheme {
    let a = |n: &str| schema.attr_id(n).expect("EMP attribute");
    VerticalScheme::new(
        schema.clone(),
        vec![
            vec![a("name"), a("sex"), a("grade")],
            vec![a("street"), a("city"), a("zip")],
            vec![a("CC"), a("AC"), a("phn"), a("salary"), a("hd")],
        ],
    )
    .expect("Fig. 2 scheme covers the schema")
}

/// The horizontal partition of Fig. 2: fragments by salary grade
/// `A` / `B` / `C`.
pub fn emp_horizontal_scheme(schema: &Arc<Schema>) -> HorizontalScheme {
    HorizontalScheme::by_values(
        schema.clone(),
        schema.attr_id("grade").expect("grade attribute"),
        vec![
            vec![Value::str("A")],
            vec![Value::str("B")],
            vec![Value::str("C")],
        ],
    )
    .expect("three grade fragments")
}

/// Configuration for the *scaled* synthetic EMP generator — the Fig. 2
/// relation grown to load-test size while keeping the Fig. 1 dependency
/// structure: `[CC=44, zip] → street` holds via a ground-truth
/// `zip → street` function and `[CC=44, AC=131] → city=EDI` holds by
/// construction, each broken at `error_rate`.
#[derive(Debug, Clone)]
pub struct EmpConfig {
    /// Number of tuples.
    pub n_rows: usize,
    /// Distinct zip codes (controls φ1 group sizes).
    pub n_zips: usize,
    /// Probability that a tuple corrupts one dependent attribute.
    pub error_rate: f64,
    /// RNG seed — same seed, same relation.
    pub seed: u64,
}

impl Default for EmpConfig {
    fn default() -> Self {
        EmpConfig {
            n_rows: 5_000,
            n_zips: 150,
            error_rate: 0.02,
            seed: 2012,
        }
    }
}

/// Ground-truth functions for the scaled EMP hierarchy.
pub mod truth {
    /// Zip code of a zip index.
    pub fn zip_code(zip_idx: i64) -> String {
        format!("EH{zip_idx:03} {}XX", zip_idx % 9)
    }

    /// Street determined by a zip (the clean φ1 right-hand side).
    pub fn street_of_zip(zip_idx: i64) -> String {
        format!("Street-{zip_idx:04}")
    }
}

fn gen_scaled_tuple(tid: Tid, cfg: &EmpConfig, rng: &mut rand::rngs::StdRng) -> Tuple {
    use rand::Rng;
    let zip_idx = rng.random_range(0..cfg.n_zips as i64);
    let mut street = truth::street_of_zip(zip_idx);
    let mut city = "EDI".to_string();
    if rng.random_bool(cfg.error_rate) {
        if rng.random_bool(0.5) {
            street = format!("Street-ERR{}", rng.random_range(0..1_000));
        } else {
            city = format!("CITY_ERR{}", rng.random_range(0..100));
        }
    }
    let grade = ["A", "B", "C"][rng.random_range(0..3usize)];
    emp_tuple(
        tid,
        &format!("Emp#{tid:06}"),
        ["M", "F"][rng.random_range(0..2usize)],
        grade,
        &street,
        &city,
        &truth::zip_code(zip_idx),
        44,
        131,
        &format!("{:07}", rng.random_range(0..10_000_000i64)),
        &format!("{}k", 40 + 10 * rng.random_range(0..12i64)),
        "01/01/2010",
    )
}

/// Generate the scaled base relation (schema and CFDs are the Fig. 1/2
/// ones: [`emp_schema`], [`emp_cfds`]).
pub fn generate(cfg: &EmpConfig) -> (Arc<Schema>, Relation) {
    use rand::SeedableRng;
    let schema = emp_schema();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut d = Relation::new(schema.clone());
    for tid in 0..cfg.n_rows as Tid {
        d.insert(gen_scaled_tuple(tid, cfg, &mut rng))
            .expect("fresh tids");
    }
    (schema, d)
}

/// Generate `n` fresh tuples with tids from `start` (for insertions).
pub fn generate_fresh(cfg: &EmpConfig, start: Tid, n: usize, seed: u64) -> Vec<Tuple> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n as Tid)
        .map(|i| gen_scaled_tuple(start + i, cfg, &mut rng))
        .collect()
}

/// A `CITIES(cid, city)` reference relation for the inclusion dependency
/// `EMP[city] ⊆ CITIES[city]` of the validation suite: one row per
/// distinct city of `d0`, with `coverage` in `[0, 1]` controlling how many
/// of those cities are actually listed (1.0 ⇒ the IND holds on `d0`;
/// lower ⇒ deterministic tail of dangling cities). Tids are `1..`.
pub fn city_reference(d0: &Relation, coverage: f64) -> Relation {
    let city = d0.schema().attr_id("city").expect("EMP has a city column");
    let mut cities: Vec<Value> = Vec::new();
    for t in d0.iter() {
        let v = t.get(city).clone();
        if !cities.contains(&v) {
            cities.push(v);
        }
    }
    cities.sort();
    let keep = ((cities.len() as f64) * coverage).round() as usize;
    let schema = Schema::new("CITIES", &["cid", "city"], "cid").expect("CITIES schema is valid");
    let mut r = Relation::new(schema);
    for (i, c) in cities.into_iter().take(keep).enumerate() {
        let tid = i as Tid + 1;
        r.insert(Tuple::new(tid, vec![Value::int(tid as i64), c]))
            .expect("fresh tids");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_violations_reproduced_centrally() {
        let (s, d) = emp_relation();
        let cfds = emp_cfds(&s);
        let v = cfd::naive::detect(&cfds, &d);
        assert_eq!(v.tids_sorted(), vec![1, 3, 4, 5]);
        let mut phi1: Vec<Tid> = v.of_cfd(0).iter().copied().collect();
        phi1.sort_unstable();
        assert_eq!(phi1, vec![1, 3, 4, 5]);
        assert_eq!(v.of_cfd(1).iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn schemes_partition_d0() {
        let (s, d) = emp_relation();
        let vs = emp_vertical_scheme(&s);
        assert_eq!(vs.n_sites(), 3);
        let frags = vs.partition(&d);
        assert!(frags.iter().all(|f| f.len() == 5));
        let hs = emp_horizontal_scheme(&s);
        let frags = hs.partition(&d).unwrap();
        assert_eq!(
            frags.iter().map(Relation::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn t6_routes_to_grade_c() {
        let (s, _) = emp_relation();
        let hs = emp_horizontal_scheme(&s);
        assert_eq!(hs.route(&t6()).unwrap(), 2);
    }

    #[test]
    fn city_reference_covers_exactly_the_requested_fraction() {
        let (_, d) = emp_relation(); // cities: EDI, NYC
        let full = city_reference(&d, 1.0);
        assert_eq!(full.len(), 2);
        let half = city_reference(&d, 0.5);
        assert_eq!(half.len(), 1);
        // Deterministic: same coverage, same rows.
        let again = city_reference(&d, 0.5);
        for (a, b) in half.iter().zip(again.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scaled_generator_is_deterministic() {
        let cfg = EmpConfig {
            n_rows: 400,
            ..EmpConfig::default()
        };
        let (_, a) = generate(&cfg);
        let (_, b) = generate(&cfg);
        assert_eq!(a.len(), 400);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let (_, c) = generate(&EmpConfig { seed: 1, ..cfg });
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn clean_scaled_data_satisfies_fig1_cfds() {
        let cfg = EmpConfig {
            n_rows: 600,
            error_rate: 0.0,
            ..EmpConfig::default()
        };
        let (s, d) = generate(&cfg);
        let v = cfd::naive::detect(&emp_cfds(&s), &d);
        assert!(v.is_empty(), "error-free scaled EMP must satisfy Fig. 1");
    }

    #[test]
    fn scaled_errors_create_violations_and_partition() {
        let cfg = EmpConfig {
            n_rows: 1_000,
            error_rate: 0.1,
            ..EmpConfig::default()
        };
        let (s, d) = generate(&cfg);
        assert!(!cfd::naive::detect(&emp_cfds(&s), &d).is_empty());
        // The Fig. 2 schemes still apply at scale.
        let frags = emp_horizontal_scheme(&s).partition(&d).unwrap();
        assert_eq!(frags.iter().map(Relation::len).sum::<usize>(), 1_000);
        assert!(frags.iter().all(|f| f.len() > 100), "all grades populated");
    }
}
