//! Seeded synthetic CFD **families** with a controllable LHS-overlap
//! knob — the workload behind the `cfd_sweep` benchmark.
//!
//! The operator-sharing optimizer (§5 extension) merges the group-by
//! passes of CFDs with identical LHS attribute lists, so the interesting
//! axis when sweeping `|Σ|` is *how much* of the family shares an LHS.
//! [`cfd_family`] makes that a dial: `overlap = 0` gives every CFD its
//! own LHS list (nothing to merge), `overlap = 1` collapses the family
//! onto as few distinct lists as possible (maximal sharing).
//!
//! Rules follow the paper's §7 methodology — "we first designed FDs,
//! then produced CFDs by adding patterns": each LHS list is **mined** as
//! a near-FD of the actual relation (an embedded `X → B` with few
//! conflicting groups, i.e. a dependency the clean generator satisfies
//! and only seeded errors break), then patterned. Variable rules
//! restrict one LHS attribute to a live constant; every 4th rule is a
//! constant CFD anchored on a real row. Violations therefore track the
//! seeded error rate instead of growing with `|Σ|` — exactly the regime
//! where per-update cost isolates candidate generation, the thing the
//! shared plan optimizes.

use cfd::{Cfd, CfdId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{AttrId, FxHashMap, FxHashSet, Relation, Schema, SmallVec, Sym, Tuple, Value};

/// Configuration for [`cfd_family`].
#[derive(Debug, Clone, Copy)]
pub struct FamilyConfig {
    /// Number of normalized CFDs to generate.
    pub n: usize,
    /// LHS sharing in `[0, 1]`: `0.0` aims for one distinct LHS
    /// attribute list per CFD (no shared group-bys to merge), `1.0`
    /// collapses the whole family onto a single list.
    pub overlap: f64,
    /// RNG seed; families are bit-deterministic per `(schema, seed)`.
    pub seed: u64,
    /// Redundancy in `[0, 1]`: this fraction of the family is rewritten
    /// as a block of prunable rules — per LHS list, one all-wildcard FD
    /// generalization (kept by a `cfd::analysis::PrunePlan`) followed by
    /// LHS-reordered duplicates and patterned refinements of it (all
    /// pruned). The FDs match every tuple, so the pruned rules are the
    /// *expensive* ones — the workload behind the Off-vs-Prune benchmark
    /// point. `0.0` (the default) leaves the family byte-identical to
    /// the dial-free generator.
    pub redundancy: f64,
    /// Number of constant-rule conflict *pairs* appended: two rules with
    /// the same pinned LHS and different RHS constants on the same
    /// attribute (the first holds on the anchor row, the second
    /// deliberately contradicts it). Fodder for `cfdlint`'s conflict
    /// table; satisfiable over open domains.
    pub conflicts: usize,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            n: 64,
            overlap: 0.5,
            seed: 0,
            redundancy: 0.0,
            conflicts: 0,
        }
    }
}

/// Number of `lhs`-groups of `d` holding more than one distinct `rhs`
/// symbol — the conflict count of the embedded FD `lhs → rhs`. Zero
/// means the FD holds exactly; the family miner accepts an RHS whose
/// count stays within the seeded-error budget.
fn fd_conflicts(d: &Relation, lhs: &[AttrId], rhs: AttrId) -> usize {
    let rcol = d.col(rhs);
    let lcols: Vec<&[Sym]> = lhs.iter().map(|&a| d.col(a)).collect();
    let mut groups: FxHashMap<SmallVec<Sym, 4>, (Sym, bool)> = FxHashMap::default();
    let mut bad = 0usize;
    for i in 0..rcol.len() {
        let key: SmallVec<Sym, 4> = lcols.iter().map(|c| c[i]).collect();
        let e = groups.entry(key).or_insert((rcol[i], false));
        if e.0 != rcol[i] && !e.1 {
            e.1 = true;
            bad += 1;
        }
    }
    bad
}

/// Generate a family of `cfg.n` CFDs over `schema`, with roughly
/// `(1 - overlap) · n` distinct LHS attribute lists, each mined as a
/// near-FD of `d` and patterned with constants sampled from `d`'s rows.
/// Ids are contiguous from 0, so the output is directly a valid rule
/// set.
pub fn cfd_family(schema: &Schema, d: &Relation, cfg: &FamilyConfig) -> Vec<Cfd> {
    assert!(cfg.n > 0, "a CFD family has at least one rule");
    assert!(
        schema.arity() >= 4,
        "need at least a two-attribute LHS plus an RHS candidate"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let overlap = cfg.overlap.clamp(0.0, 1.0);
    let n_lists = (((1.0 - overlap) * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);

    // Non-key attributes are fair game for both sides of a rule.
    let key = schema.key();
    let attrs: Vec<AttrId> = schema
        .all_attr_ids()
        .into_iter()
        .filter(|&a| a != key)
        .collect();

    // Near-FD budget: a candidate RHS is eligible when its conflict
    // count over `d` stays within ~5% of the rows — the scale of the
    // generator's seeded dependent-attribute errors, far below what a
    // random (non-functional) attribute pair produces.
    let max_conflicts = (d.len() / 20).max(2);

    // Distinct LHS lists, each 2–3 attributes (so a one-attribute
    // residual restrict always leaves room), sorted so identical sets
    // compare equal (the shared plan merges on exact list equality).
    // A list is kept only if some non-LHS attribute is a near-FD RHS
    // for it; each kept list carries its eligible RHS pool. A narrow
    // schema may not admit `n_lists` such lists; the attempt guard then
    // settles for repeats or for the least-conflicted RHS (repeats only
    // *increase* sharing, never break it).
    let mut lists: Vec<(Vec<AttrId>, Vec<AttrId>)> = Vec::with_capacity(n_lists);
    let mut seen: FxHashSet<Vec<AttrId>> = FxHashSet::default();
    let mut attempts = 0usize;
    while lists.len() < n_lists {
        attempts += 1;
        let forced = attempts > 64 * n_lists;
        let len = (2 + rng.random_range(0..2usize)).min(attrs.len().saturating_sub(1).max(2));
        let mut pool = attrs.clone();
        let mut lhs = Vec::with_capacity(len);
        for _ in 0..len {
            let k = rng.random_range(0..pool.len());
            lhs.push(pool.swap_remove(k));
        }
        lhs.sort_unstable();
        if seen.contains(&lhs) && !forced {
            continue;
        }
        let mut rhs_pool: Vec<AttrId> = attrs
            .iter()
            .copied()
            .filter(|a| !lhs.contains(a))
            .filter(|&a| fd_conflicts(d, &lhs, a) <= max_conflicts)
            .collect();
        if rhs_pool.is_empty() {
            if !forced {
                continue;
            }
            // Settle: least-conflicted RHS of an over-budget list.
            let best = attrs
                .iter()
                .copied()
                .filter(|a| !lhs.contains(a))
                .min_by_key(|&a| fd_conflicts(d, &lhs, a))
                .expect("arity >= 4 leaves an RHS candidate");
            rhs_pool = vec![best];
        }
        seen.insert(lhs.clone());
        lists.push((lhs, rhs_pool));
    }

    let rows: Vec<Tuple> = d.iter().collect();

    // Column cardinalities: variable rules restrict their *most
    // selective* LHS attribute, so each pattern governs a thin slice of
    // the relation — the shape of a real pattern tableau, and what
    // keeps the applicable-rule set per tuple (and hence the §6 case
    // analysis both sharing modes must run) from growing with `|Σ|`.
    let card: FxHashMap<AttrId, usize> = attrs
        .iter()
        .map(|&a| {
            let distinct: FxHashSet<Sym> = d.col(a).iter().copied().collect();
            (a, distinct.len())
        })
        .collect();

    // Dial accounting: the redundancy block and the conflict pairs are
    // carved out of the same `cfg.n` total so sweeps compare catalogs of
    // equal size. At least one base rule always survives.
    let redundancy = cfg.redundancy.clamp(0.0, 1.0);
    let pairs = cfg.conflicts.min(cfg.n.saturating_sub(1) / 2);
    let n_red = (((redundancy * cfg.n as f64).round()) as usize).min(cfg.n - 1 - 2 * pairs);
    let base_n = cfg.n - n_red - 2 * pairs;

    let mut out: Vec<Cfd> = Vec::with_capacity(cfg.n);
    for i in 0..base_n {
        let id = i as CfdId;
        // Round-robin over the lists keeps every key group populated.
        let (lhs_attrs, rhs_pool) = &lists[i % n_lists];
        // Several RHS choices per list = several rules per key group —
        // genuine operator sharing, not just rule duplication.
        let rhs = rhs_pool[rng.random_range(0..rhs_pool.len())];
        // Patterns anchor on one live row, so restricts hit real data
        // and constant rules (nearly) hold under the mined near-FD.
        let anchor = if rows.is_empty() {
            None
        } else {
            Some(&rows[rng.random_range(0..rows.len())])
        };
        let val = |a: AttrId| anchor.map_or_else(|| Value::int(0), |t| t.get(a).clone());
        let constant = i % 4 == 3;
        let lhs_pat: Vec<Option<Value>> = if constant {
            // Constant CFD: every LHS attribute pinned to the anchor
            // row's values, RHS pattern the anchor's RHS value.
            lhs_attrs.iter().map(|&a| Some(val(a))).collect()
        } else {
            // Variable CFD: a residual restrict on the most selective
            // LHS attribute — same key group, different residual
            // constant per rule, each scoped to the thin slice carrying
            // its constant.
            let restrict = lhs_attrs
                .iter()
                .enumerate()
                .max_by_key(|&(_, &a)| card.get(&a).copied().unwrap_or(0))
                .map(|(pos, _)| pos)
                .expect("LHS lists are non-empty");
            lhs_attrs
                .iter()
                .enumerate()
                .map(|(pos, &a)| (pos == restrict).then(|| val(a)))
                .collect()
        };
        let rhs_pat = constant.then(|| val(rhs));

        let lhs_named: Vec<(&str, Option<Value>)> = lhs_attrs
            .iter()
            .zip(lhs_pat)
            .map(|(&a, p)| (schema.attr_name(a), p))
            .collect();
        let cfd = Cfd::from_names(id, schema, &lhs_named, (schema.attr_name(rhs), rhs_pat))
            .expect("family attributes come from the schema");
        out.push(cfd);
    }

    // The dial rules draw from a *derived* RNG so turning a dial never
    // perturbs the base stream — `redundancy: 0.0, conflicts: 0` is
    // byte-identical to the dial-free generator.
    if n_red > 0 || pairs > 0 {
        let mut drng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);

        // Redundancy block: round-robin over a few lists; round 0 emits
        // each list's representative (a pure FD `X → B`, all wildcards —
        // matches every tuple, so the whole block sits at the expensive
        // end of the family), later rounds emit LHS-reordered duplicates
        // and patterned refinements of it, all of which a
        // `cfd::analysis::PrunePlan` drops onto the representative.
        let n_fd_lists = (n_red / 8).clamp(1, lists.len());
        for k in 0..n_red {
            let id = (base_n + k) as CfdId;
            let (lhs_attrs, rhs_pool) = &lists[k % n_fd_lists];
            let rhs = rhs_pool[0];
            let round = k / n_fd_lists;
            let mut order: Vec<AttrId> = lhs_attrs.clone();
            let mut lhs_pat: Vec<Option<Value>> = vec![None; order.len()];
            if round == 0 {
                // The kept representative: leave everything wildcard.
            } else if round % 4 == 0 && !rows.is_empty() {
                // A patterned refinement of the FD (pruned): restrict
                // the most selective LHS attribute to a live constant.
                let restrict = order
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &a)| card.get(&a).copied().unwrap_or(0))
                    .map(|(pos, _)| pos)
                    .expect("LHS lists are non-empty");
                let anchor = &rows[drng.random_range(0..rows.len())];
                lhs_pat[restrict] = Some(anchor.get(order[restrict]).clone());
            } else {
                // An LHS-reordered duplicate of the FD (pruned).
                order.reverse();
            }
            let lhs_named: Vec<(&str, Option<Value>)> = order
                .iter()
                .zip(lhs_pat)
                .map(|(&a, p)| (schema.attr_name(a), p))
                .collect();
            out.push(
                Cfd::from_names(id, schema, &lhs_named, (schema.attr_name(rhs), None))
                    .expect("family attributes come from the schema"),
            );
        }

        // Conflict pairs: two constant rules with the same pinned LHS
        // and different RHS constants on the same attribute. The first
        // holds on its anchor row; the second contradicts it with
        // another live value from the column (or a synthetic one when
        // the column is constant).
        for p in 0..pairs {
            let id = (base_n + n_red + 2 * p) as CfdId;
            let (lhs_attrs, rhs_pool) = &lists[p % lists.len()];
            let rhs = rhs_pool[0];
            let anchor = (!rows.is_empty()).then(|| &rows[drng.random_range(0..rows.len())]);
            let val = |a: AttrId| anchor.map_or_else(|| Value::int(0), |t| t.get(a).clone());
            let v1 = val(rhs);
            let v2 = rows
                .iter()
                .map(|t| t.get(rhs).clone())
                .find(|v| *v != v1)
                .unwrap_or_else(|| Value::int(-1 - p as i64));
            let lhs_named: Vec<(&str, Option<Value>)> = lhs_attrs
                .iter()
                .map(|&a| (schema.attr_name(a), Some(val(a))))
                .collect();
            for (off, v) in [v1, v2].into_iter().enumerate() {
                out.push(
                    Cfd::from_names(
                        id + off as CfdId,
                        schema,
                        &lhs_named,
                        (schema.attr_name(rhs), Some(v)),
                    )
                    .expect("family attributes come from the schema"),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpch_base() -> (std::sync::Arc<Schema>, Relation) {
        let cfg = crate::tpch::TpchConfig {
            n_rows: 200,
            ..crate::tpch::TpchConfig::default()
        };
        crate::tpch::generate(&cfg)
    }

    #[test]
    fn exact_count_contiguous_ids_deterministic() {
        let (s, d) = tpch_base();
        let cfg = FamilyConfig {
            n: 64,
            overlap: 0.9,
            seed: 7,
            ..FamilyConfig::default()
        };
        let a = cfd_family(&s, &d, &cfg);
        let b = cfd_family(&s, &d, &cfg);
        assert_eq!(a, b, "bit-deterministic per seed");
        assert_eq!(a.len(), 64);
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.id, i as CfdId);
        }
    }

    #[test]
    fn overlap_dial_controls_distinct_lhs_lists() {
        let (s, d) = tpch_base();
        let distinct = |overlap: f64| {
            let fam = cfd_family(
                &s,
                &d,
                &FamilyConfig {
                    n: 64,
                    overlap,
                    seed: 3,
                    ..FamilyConfig::default()
                },
            );
            let lists: FxHashSet<Vec<AttrId>> = fam.iter().map(|c| c.lhs.clone()).collect();
            lists.len()
        };
        let (lo, hi) = (distinct(1.0), distinct(0.0));
        assert_eq!(lo, 1, "full overlap collapses onto one LHS list");
        assert!(hi >= 24, "no overlap spreads over many lists, got {hi}");
    }

    #[test]
    fn constants_are_sampled_from_live_columns() {
        let (s, d) = tpch_base();
        let fam = cfd_family(
            &s,
            &d,
            &FamilyConfig {
                n: 32,
                overlap: 0.5,
                seed: 11,
                ..FamilyConfig::default()
            },
        );
        assert!(fam.iter().any(cfd::Cfd::is_constant));
        assert!(fam.iter().any(cfd::Cfd::is_variable));
        for c in &fam {
            for (a, v) in c.constant_atoms() {
                assert!(
                    d.iter().any(|t| t.get(a) == &v),
                    "restrict constant must hit live data"
                );
            }
        }
    }

    #[test]
    fn rules_are_near_fds_of_the_relation() {
        let (s, d) = tpch_base();
        let fam = cfd_family(
            &s,
            &d,
            &FamilyConfig {
                n: 64,
                overlap: 0.9,
                seed: 5,
                ..FamilyConfig::default()
            },
        );
        // Every mined embedded FD conflicts on at most the seeded-error
        // budget of groups — rules (nearly) hold on the base data, the
        // paper's §7 "designed FDs, then added patterns" methodology.
        let budget = (d.len() / 20).max(2);
        for c in &fam {
            let bad = fd_conflicts(&d, &c.lhs, c.rhs);
            assert!(
                bad <= budget,
                "CFD {} embeds an FD with {bad} conflicting groups (budget {budget})",
                c.id
            );
        }
    }

    #[test]
    fn dials_leave_the_base_stream_untouched_and_seed_findings() {
        let (s, d) = tpch_base();
        let plain = cfd_family(
            &s,
            &d,
            &FamilyConfig {
                n: 64,
                overlap: 0.9,
                seed: 7,
                ..FamilyConfig::default()
            },
        );
        let dialed = cfd_family(
            &s,
            &d,
            &FamilyConfig {
                n: 64,
                overlap: 0.9,
                seed: 7,
                redundancy: 0.5,
                conflicts: 2,
            },
        );
        assert_eq!(dialed.len(), 64);
        for (i, c) in dialed.iter().enumerate() {
            assert_eq!(c.id, i as CfdId);
        }
        // The dial rules draw from a derived RNG, so the surviving base
        // prefix (64 - 32 redundant - 2·2 conflict rules) is
        // bit-identical to the dial-free stream.
        let base_n = 64 - 32 - 4;
        assert_eq!(&dialed[..base_n], &plain[..base_n]);
        // The redundancy block is actually prunable, at roughly the
        // dialed fraction (4 of the 32 block rules are kept reps).
        let plan = cfd::analysis::PrunePlan::compute(&dialed);
        let f = plan.pruned_fraction();
        assert!((0.4..=0.6).contains(&f), "pruned fraction {f}");
        // The conflict pairs are visible to the analyzer.
        let pairs = cfd::analysis::conflict_pairs(&dialed, &cfd::Domains::open(&s));
        assert!(pairs.len() >= 2, "expected seeded conflicts, got {pairs:?}");
    }

    #[test]
    fn family_forms_a_valid_shared_plan() {
        let (s, d) = tpch_base();
        let fam = cfd_family(
            &s,
            &d,
            &FamilyConfig {
                n: 64,
                overlap: 0.9,
                seed: 5,
                ..FamilyConfig::default()
            },
        );
        let plan = cfd::SharedPlan::new(&fam);
        assert_eq!(plan.n_cfds(), 64);
        let n_var = fam.iter().filter(|c| c.is_variable()).count();
        let groups: usize = plan.key_groups().len();
        assert!(
            groups * 4 <= n_var,
            "overlap-heavy family must share group-bys: {groups} groups for {n_var} variable CFDs"
        );
    }
}
