//! CFD rule generation, following the paper's methodology (§7): *"CFDs were
//! designed manually. We first designed functional dependencies (FDs), and
//! then produced CFDs by adding patterns (i.e., conditions) to the FDs."*
//!
//! Each workload has a hand-designed FD catalog that the clean generator
//! output genuinely satisfies; scaling `|Σ|` adds pattern-conditioned
//! variants (constants on an extra LHS attribute) and constant CFDs whose
//! RHS constants come from the generators' ground-truth functions — so
//! violations correspond exactly to seeded errors.

use cfd::{Cfd, CfdId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{Schema, Value};

/// An FD template: LHS attribute names → RHS attribute name.
struct FdTemplate {
    lhs: &'static [&'static str],
    rhs: &'static str,
}

/// TPCH FD catalog (all satisfied by error-free generator output).
const TPCH_FDS: &[FdTemplate] = &[
    FdTemplate {
        lhs: &["custkey"],
        rhs: "custname",
    },
    FdTemplate {
        lhs: &["custkey"],
        rhs: "nation",
    },
    FdTemplate {
        lhs: &["custkey"],
        rhs: "mktsegment",
    },
    FdTemplate {
        lhs: &["nationkey"],
        rhs: "nation",
    },
    FdTemplate {
        lhs: &["nation"],
        rhs: "region",
    },
    FdTemplate {
        lhs: &["partkey"],
        rhs: "brand",
    },
    FdTemplate {
        lhs: &["partkey"],
        rhs: "ptype",
    },
    FdTemplate {
        lhs: &["partkey"],
        rhs: "container",
    },
    FdTemplate {
        lhs: &["suppkey"],
        rhs: "suppnation",
    },
    FdTemplate {
        lhs: &["custkey", "partkey"],
        rhs: "brand",
    },
    FdTemplate {
        lhs: &["nationkey", "suppkey"],
        rhs: "region",
    },
];

/// Condition attributes and values for TPCH pattern expansion (independent
/// of every catalog FD's attributes).
const TPCH_CONDS: &[(&str, &[&str])] = &[
    (
        "shipmode",
        &["AIR", "RAIL", "TRUCK", "MAIL", "SHIP", "FOB", "REG AIR"],
    ),
    (
        "orderpriority",
        &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPEC", "5-LOW"],
    ),
];

/// DBLP FD catalog.
const DBLP_FDS: &[FdTemplate] = &[
    FdTemplate {
        lhs: &["venuekey"],
        rhs: "venue",
    },
    FdTemplate {
        lhs: &["venuekey"],
        rhs: "publisher",
    },
    FdTemplate {
        lhs: &["venue"],
        rhs: "publisher",
    },
    FdTemplate {
        lhs: &["venuekey", "volume"],
        rhs: "year",
    },
    FdTemplate {
        lhs: &["venue", "volume"],
        rhs: "year",
    },
];

const DBLP_CONDS: &[(&str, &[&str])] =
    &[("etype", &["article", "inproceedings", "book", "phdthesis"])];

fn expand(
    schema: &Schema,
    fds: &[FdTemplate],
    conds: &[(&str, &[&str])],
    constants: &dyn Fn(usize, &mut StdRng, &Schema, CfdId) -> Option<Cfd>,
    n: usize,
    seed: u64,
) -> Vec<Cfd> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Cfd> = Vec::with_capacity(n);
    let mut i = 0usize;
    while out.len() < n {
        let id = out.len() as CfdId;
        // Every 4th rule is a constant CFD drawn from the ground truth.
        if i % 4 == 3 {
            if let Some(c) = constants(i, &mut rng, schema, id) {
                out.push(c);
                i += 1;
                continue;
            }
        }
        let fd = &fds[i % fds.len()];
        let variant = i / fds.len();
        let mut lhs: Vec<(&str, Option<Value>)> = fd.lhs.iter().map(|a| (*a, None)).collect();
        if variant > 0 {
            // Add a pattern condition on an independent attribute.
            let (cond_attr, values) = conds[variant % conds.len()];
            if cond_attr != fd.rhs && !fd.lhs.contains(&cond_attr) {
                let v = values[(variant / conds.len()) % values.len()];
                lhs.push((cond_attr, Some(Value::str(v))));
            }
        }
        let cfd = Cfd::from_names(id, schema, &lhs, (fd.rhs, None))
            .expect("catalog attributes exist in the schema");
        out.push(cfd);
        i += 1;
    }
    out
}

/// Generate `n` CFDs for the TPCH workload (mix of plain FDs,
/// pattern-conditioned variable CFDs and ground-truth constant CFDs).
pub fn tpch_rules(schema: &Schema, n: usize, seed: u64) -> Vec<Cfd> {
    expand(
        schema,
        TPCH_FDS,
        TPCH_CONDS,
        &|i, rng, schema, id| {
            // Constant CFDs from the nation/region ground truth.
            match i % 2 {
                0 => {
                    let k = rng.random_range(0..25i64);
                    Cfd::from_names(
                        id,
                        schema,
                        &[("nationkey", Some(Value::int(k)))],
                        (
                            "nation",
                            Some(Value::str(crate::tpch::truth::nation_name(k))),
                        ),
                    )
                    .ok()
                }
                _ => {
                    let k = rng.random_range(0..25i64);
                    Cfd::from_names(
                        id,
                        schema,
                        &[(
                            "nation",
                            Some(Value::str(crate::tpch::truth::nation_name(k))),
                        )],
                        (
                            "region",
                            Some(Value::str(crate::tpch::truth::region_of_nation(k))),
                        ),
                    )
                    .ok()
                }
            }
        },
        n,
        seed,
    )
}

/// Generate `n` CFDs for the DBLP workload.
pub fn dblp_rules(schema: &Schema, n: usize, seed: u64) -> Vec<Cfd> {
    expand(
        schema,
        DBLP_FDS,
        DBLP_CONDS,
        &|_i, rng, schema, id| {
            let k = rng.random_range(0..50i64);
            Cfd::from_names(
                id,
                schema,
                &[("venuekey", Some(Value::int(k)))],
                ("venue", Some(Value::str(crate::dblp::truth::venue_name(k)))),
            )
            .ok()
        },
        n,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exactly_n_with_contiguous_ids() {
        let s = crate::tpch::tpch_schema();
        for n in [1usize, 8, 25, 125] {
            let rules = tpch_rules(&s, n, 1);
            assert_eq!(rules.len(), n);
            for (i, r) in rules.iter().enumerate() {
                assert_eq!(r.id, i as CfdId);
            }
        }
    }

    #[test]
    fn mixes_constant_and_variable() {
        let s = crate::tpch::tpch_schema();
        let rules = tpch_rules(&s, 40, 1);
        let n_const = rules.iter().filter(|c| c.is_constant()).count();
        let n_var = rules.len() - n_const;
        assert!(n_const >= 5, "got {n_const} constant CFDs");
        assert!(n_var >= 20, "got {n_var} variable CFDs");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = crate::dblp::dblp_schema();
        let a = dblp_rules(&s, 16, 9);
        let b = dblp_rules(&s, 16, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_variants_differ_from_plain_fds() {
        let s = crate::tpch::tpch_schema();
        let rules = tpch_rules(&s, 60, 1);
        // Later variants must carry constant atoms on condition attrs.
        assert!(rules
            .iter()
            .any(|c| c.is_variable() && !c.constant_atoms().is_empty()));
        // And the first |catalog| variable rules are plain FDs.
        assert!(rules[0].is_fd());
    }
}
